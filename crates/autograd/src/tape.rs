//! The autodiff tape.

use pipad_gpu_sim::{Gpu, KernelCategory, OomError, StreamId};
use pipad_kernels as k;
use pipad_kernels::DeviceMatrix;
use pipad_pool as pool;
use pipad_sparse::{Csr, SlicedCsr};
use pipad_tensor::Matrix;
use std::cell::{Ref, RefCell};
use std::ops::Deref;
use std::rc::Rc;

/// Which aggregation kernel a [`Tape::spmm`] op uses (forward and backward).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationKernel {
    /// PyG-style COO gather/scatter (PyGT, PyGT-A, PyGT-R).
    CooScatter,
    /// GE-SpMM shared-memory CSR kernel (PyGT-G).
    GeSpmm,
}

/// A parameter shared between the model (which owns it across iterations)
/// and the tapes that use it.
pub type SharedParam = Rc<RefCell<DeviceMatrix>>;

/// Handle to a tape node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Value {
    Owned(DeviceMatrix),
    Shared(SharedParam),
}

/// Borrow guard over a node's device value.
enum DevRef<'a> {
    Owned(&'a DeviceMatrix),
    Shared(Ref<'a, DeviceMatrix>),
}

impl Deref for DevRef<'_> {
    type Target = DeviceMatrix;
    fn deref(&self) -> &DeviceMatrix {
        match self {
            DevRef::Owned(m) => m,
            DevRef::Shared(r) => r,
        }
    }
}

enum Op {
    Input,
    Param,
    MatMul(Var, Var),
    Spmm {
        adj: Rc<Csr>,
        x: Var,
        kernel: AggregationKernel,
    },
    SpmmSliced {
        adj: Rc<SlicedCsr>,
        x: Var,
        s_per: usize,
    },
    /// Rectangular sliced aggregation with an explicitly supplied transpose
    /// for backward (halo exchange: `local × n` row slice against globally
    /// stacked features — the symmetry shortcut of [`Op::SpmmSliced`] does
    /// not apply).
    SpmmSlicedRect {
        adj_t: Rc<SlicedCsr>,
        x: Var,
    },
    /// Fused partition aggregation (PiPAD §4.2): one parallel pass over the
    /// overlap topology serving all members, per-member exclusive passes
    /// accumulated via atomic epilogues, and one normalization pass.
    /// Output is the coalescent normalized matrix `n × (s·d)`.
    SpmmPartition {
        overlap: Option<Rc<SlicedCsr>>,
        exclusives: Vec<Rc<SlicedCsr>>,
        xs: Vec<Var>,
        inv_degs: Vec<Rc<Vec<f32>>>,
    },
    RowScale {
        x: Var,
        factors: Rc<Vec<f32>>,
    },
    /// GAT-style attention aggregation: `out[u] = Σ_v α_uv · x[v]` with
    /// `α = row_softmax(leaky_relu(l[u] + r[v]))`. Fully differentiable
    /// w.r.t. `x`, `l` and `r`.
    GatAggregate {
        adj: Rc<Csr>,
        x: Var,
        l: Var,
        r: Var,
        /// Softmax-normalized coefficients per nonzero (forward cache).
        alpha: Rc<Vec<f32>>,
        /// Raw pre-activation logits per nonzero (for the leaky-relu mask).
        raw: Rc<Vec<f32>>,
        negative_slope: f32,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    AffineConst {
        x: Var,
        mul: f32,
    },
    AddBias {
        x: Var,
        b: Var,
    },
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    ConcatCols(Vec<Var>),
    SliceCols {
        x: Var,
        from: usize,
    },
    ConcatRows(Vec<Var>),
    SliceRows {
        x: Var,
        from: usize,
    },
}

struct Node {
    value: Value,
    grad: Option<DeviceMatrix>,
    op: Op,
    requires_grad: bool,
    category: KernelCategory,
}

/// Reverse-mode tape over device kernels. See the crate docs for design.
pub struct Tape {
    nodes: Vec<Node>,
    stream: StreamId,
}

impl Tape {
    /// Create a new instance.
    pub fn new(stream: StreamId) -> Self {
        Tape {
            nodes: Vec::new(),
            stream,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The stream this tape launches kernels on.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    fn dev(&self, v: Var) -> DevRef<'_> {
        match &self.nodes[v.0].value {
            Value::Owned(m) => DevRef::Owned(m),
            Value::Shared(p) => DevRef::Shared(p.borrow()),
        }
    }

    fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.dev(v).host().shape()
    }

    /// Read a node's value (clones the host matrix).
    pub fn host(&self, v: Var) -> Matrix {
        self.dev(v).host().clone_in()
    }

    /// Apply `f` to a node's value without cloning.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Matrix) -> R) -> R {
        f(self.dev(v).host())
    }

    /// Accumulated gradient of a node, if backward reached it.
    pub fn grad(&self, v: Var) -> Option<Matrix> {
        self.nodes[v.0].grad.as_ref().map(|g| g.host().clone_in())
    }

    fn push_owned(
        &mut self,
        value: DeviceMatrix,
        op: Op,
        requires_grad: bool,
        category: KernelCategory,
    ) -> Var {
        self.nodes.push(Node {
            value: Value::Owned(value),
            grad: None,
            op,
            requires_grad,
            category,
        });
        Var(self.nodes.len() - 1)
    }

    /// Record a kernel-computed value. This is the NaN-poison choke point:
    /// if the fault layer armed a poison on the producing launch, the
    /// output is replaced with NaNs before it enters the tape — exactly
    /// what a corrupted kernel write would look like. Inputs and params
    /// bypass this (poison targets kernel outputs, not uploaded data).
    fn push_computed(
        &mut self,
        gpu: &mut Gpu,
        mut value: DeviceMatrix,
        op: Op,
        requires_grad: bool,
        category: KernelCategory,
    ) -> Var {
        if gpu.take_poison_pending() {
            let (r, c) = value.host().shape();
            value.store(Matrix::full(r, c, f32::NAN));
        }
        self.push_owned(value, op, requires_grad, category)
    }

    // ---- leaves ----------------------------------------------------------

    /// Register a device-resident value with no gradient (data).
    pub fn input(&mut self, value: DeviceMatrix) -> Var {
        self.push_owned(value, Op::Input, false, KernelCategory::Other)
    }

    /// Register a device-resident value that **carries** gradient without
    /// being a parameter. The reverse sweep stops here (`Op::Input` has no
    /// inputs of its own) but the accumulated gradient stays readable via
    /// [`Tape::grad`] — the sharded trainer registers peer shards' halo
    /// activations this way and routes the deposited gradient back to the
    /// producing shard on the host.
    pub fn input_grad(&mut self, value: DeviceMatrix) -> Var {
        self.push_owned(value, Op::Input, true, KernelCategory::Other)
    }

    /// Register a shared device-resident value **without** gradient — used
    /// for cached intermediates (e.g. PiPAD's GPU-side reuse buffer) that
    /// several tapes read in place.
    pub fn input_shared(&mut self, p: &SharedParam) -> Var {
        self.nodes.push(Node {
            value: Value::Shared(Rc::clone(p)),
            grad: None,
            op: Op::Input,
            requires_grad: false,
            category: KernelCategory::Other,
        });
        Var(self.nodes.len() - 1)
    }

    /// Register a shared trainable parameter.
    pub fn param(&mut self, p: &SharedParam) -> Var {
        self.nodes.push(Node {
            value: Value::Shared(Rc::clone(p)),
            grad: None,
            op: Op::Param,
            requires_grad: true,
            category: KernelCategory::Other,
        });
        Var(self.nodes.len() - 1)
    }

    // ---- forward ops ------------------------------------------------------

    /// `x × w`.
    pub fn matmul(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        w: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let out = {
            let (a, b) = (self.dev(x), self.dev(w));
            k::gemm_device(gpu, self.stream, &a, &b, category)?
        };
        let rg = self.requires(x) || self.requires(w);
        Ok(self.push_computed(gpu, out, Op::MatMul(x, w), rg, category))
    }

    /// Aggregation over a CSR adjacency. `adj` must be structurally
    /// symmetric so backward can reuse the forward operator.
    pub fn spmm(
        &mut self,
        gpu: &mut Gpu,
        adj: Rc<Csr>,
        x: Var,
        kernel: AggregationKernel,
    ) -> Result<Var, OomError> {
        let out = {
            let handle = k::DeviceCsr::resident(Rc::clone(&adj));
            let dx = self.dev(x);
            match kernel {
                AggregationKernel::CooScatter => {
                    k::spmm_coo_scatter(gpu, self.stream, &handle, &dx)?
                }
                AggregationKernel::GeSpmm => k::spmm_gespmm(gpu, self.stream, &handle, &dx)?,
            }
        };
        let rg = self.requires(x);
        Ok(self.push_computed(
            gpu,
            out,
            Op::Spmm { adj, x, kernel },
            rg,
            KernelCategory::Aggregation,
        ))
    }

    /// PiPAD's parallel aggregation over a sliced adjacency and coalescent
    /// features (`s_per` snapshots wide). Symmetry requirement as [`Tape::spmm`].
    pub fn spmm_sliced(
        &mut self,
        gpu: &mut Gpu,
        adj: Rc<SlicedCsr>,
        x: Var,
        s_per: usize,
    ) -> Result<Var, OomError> {
        let out = {
            let handle = k::DeviceSliced::resident(Rc::clone(&adj));
            let dx = self.dev(x);
            k::spmm_sliced_parallel(gpu, self.stream, &handle, &dx, s_per)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(
            gpu,
            out,
            Op::SpmmSliced { adj, x, s_per },
            rg,
            KernelCategory::Aggregation,
        ))
    }

    /// Rectangular sliced aggregation `adj · x` with an explicitly supplied
    /// transpose for backward. Unlike [`Tape::spmm_sliced`], `adj` need not
    /// be square or symmetric: the multi-GPU halo-exchange path aggregates a
    /// `local × n` row slice of the normalized adjacency against globally
    /// stacked features, and backward maps the upstream gradient through
    /// `adj_t = adjᵀ` (`n × local`) instead of reusing the forward operator.
    pub fn spmm_sliced_rect(
        &mut self,
        gpu: &mut Gpu,
        adj: Rc<SlicedCsr>,
        adj_t: Rc<SlicedCsr>,
        x: Var,
    ) -> Result<Var, OomError> {
        let out = {
            let handle = k::DeviceSliced::resident(adj);
            let dx = self.dev(x);
            k::spmm_sliced_parallel(gpu, self.stream, &handle, &dx, 1)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(
            gpu,
            out,
            Op::SpmmSlicedRect { adj_t, x },
            rg,
            KernelCategory::Aggregation,
        ))
    }

    /// Fused partition aggregation (PiPAD's Algorithm 1 composed with its
    /// epilogues): computes the normalized mean aggregation of every member
    /// of a snapshot partition in one coalescent output.
    ///
    /// * `overlap`: sliced adjacency of the topology shared by all members
    ///   (`None` degenerates to exclusive-only, e.g. a partition of one);
    /// * `exclusives[k]`: member `k`'s remaining topology (results are
    ///   accumulated by the kernels' atomic output writes — no separate
    ///   combine pass);
    /// * `inv_degs[k]`: member `k`'s `1/(deg+1)` normalization factors.
    ///
    /// Adjacency must be symmetric (see [`Tape::spmm`]). Returns the
    /// coalescent `n × (s·d)` Var; per-member views via [`Tape::slice_cols`].
    pub fn spmm_partition(
        &mut self,
        gpu: &mut Gpu,
        overlap: Option<Rc<SlicedCsr>>,
        exclusives: Vec<Rc<SlicedCsr>>,
        xs: Vec<Var>,
        inv_degs: Vec<Rc<Vec<f32>>>,
    ) -> Result<Var, OomError> {
        let size = xs.len();
        assert!(size >= 1);
        assert_eq!(exclusives.len(), size, "one exclusive part per member");
        assert_eq!(inv_degs.len(), size, "one factor set per member");
        let cat = KernelCategory::Aggregation;
        let s = self.stream;

        // Raw (unnormalized) accumulation of overlap + exclusive passes.
        let raw = {
            let hosts: Vec<Matrix> = xs.iter().map(|&x| self.host(x)).collect();
            let refs: Vec<&Matrix> = hosts.iter().collect();
            let coalesced = Matrix::concat_cols(&refs);
            let d_co = DeviceMatrix::alloc(gpu, coalesced)?;
            let mut acc = if let Some(ov) = overlap.as_ref().filter(|_| size > 1) {
                let handle = k::DeviceSliced::resident(Rc::clone(ov));
                let out = k::spmm_sliced_parallel(gpu, s, &handle, &d_co, size)?;
                d_co.release(gpu);
                out
            } else {
                let rows = hosts[0].rows();
                let cols: usize = hosts.iter().map(|h| h.cols()).sum();
                d_co.free(gpu);
                DeviceMatrix::alloc(gpu, Matrix::zeros_in(rows, cols))?
            };
            // Exclusive passes: their output writes are the atomic adds into
            // `acc` — the kernel cost already covers them, so the host-side
            // accumulation below adds no extra launch.
            let mut col = 0;
            for (kx, (excl, h)) in exclusives.iter().zip(&hosts).enumerate() {
                let width = h.cols();
                if excl.nnz() > 0 || (overlap.is_none() || size == 1) {
                    let handle = k::DeviceSliced::resident(Rc::clone(excl));
                    let dx = self.dev(xs[kx]);
                    let part = k::spmm_sliced_parallel(gpu, s, &handle, &dx, 1)?;
                    drop(dx);
                    let mut merged = acc.host().clone_in();
                    let n_rows = merged.rows();
                    let n_cols = merged.cols();
                    let ph = part.host();
                    let shared = pool::DisjointMut::new(merged.as_mut_slice());
                    let min_rows = (1usize << 15).div_ceil(width.max(1)).max(1);
                    pool::parallel_for(n_rows, min_rows, |rows| {
                        for r in rows {
                            // SAFETY: bands cover disjoint row ranges.
                            let row = unsafe { shared.slice(r * n_cols..(r + 1) * n_cols) };
                            let dst = &mut row[col..col + width];
                            for (d, &v) in dst.iter_mut().zip(ph.row(r)) {
                                *d += v;
                            }
                        }
                    });
                    part.release(gpu);
                    acc.store(merged);
                }
                col += width;
            }
            for h in hosts {
                h.recycle();
            }
            acc
        };
        // Normalization epilogue.
        let out = k::row_scale_multi(gpu, s, &raw, &inv_degs, cat)?;
        raw.release(gpu);
        let rg = xs.iter().any(|&x| self.requires(x));
        Ok(self.push_computed(
            gpu,
            out,
            Op::SpmmPartition {
                overlap,
                exclusives,
                xs,
                inv_degs,
            },
            rg,
            cat,
        ))
    }

    /// GAT attention aggregation (the paper's §1 generalization target):
    /// computes per-edge attention from the `l`/`r` projections (n×1 each),
    /// row-softmaxes them, and aggregates `x` with the resulting weights.
    /// Gradients flow into `x`, `l` and `r` (through the softmax and the
    /// leaky-relu). `adj` must be structurally symmetric, as for
    /// [`Tape::spmm`].
    pub fn gat_aggregate(
        &mut self,
        gpu: &mut Gpu,
        adj: Rc<Csr>,
        x: Var,
        l: Var,
        r: Var,
        negative_slope: f32,
    ) -> Result<Var, OomError> {
        let cat = KernelCategory::Aggregation;
        let s = self.stream;
        let (scores, alpha, out) = {
            let handle = k::DeviceCsr::resident(Rc::clone(&adj));
            let (dl, dr) = (self.dev(l), self.dev(r));
            let scores = k::edge_scores(gpu, s, &handle, &dl, &dr, negative_slope);
            drop(dl);
            drop(dr);
            let alpha = k::edge_softmax(gpu, s, &handle, &scores);
            let dx = self.dev(x);
            let out = k::spmm_weighted(gpu, s, &handle, &alpha, &dx)?;
            (scores, alpha, out)
        };
        // cache the *raw* (pre-softmax, post-leaky) logits to recover the
        // leaky-relu mask in backward: raw > 0 ⇔ pre-activation > 0 when
        // negative_slope > 0.
        let rg = self.requires(x) || self.requires(l) || self.requires(r);
        Ok(self.push_computed(
            gpu,
            out,
            Op::GatAggregate {
                adj,
                x,
                l,
                r,
                alpha: Rc::new(alpha),
                raw: Rc::new(scores),
                negative_slope,
            },
            rg,
            cat,
        ))
    }

    /// Row-wise scaling by per-vertex factors (degree normalization).
    pub fn row_scale(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        factors: Rc<Vec<f32>>,
    ) -> Result<Var, OomError> {
        let out = {
            let dx = self.dev(x);
            k::row_scale(gpu, self.stream, &dx, &factors, KernelCategory::Aggregation)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(
            gpu,
            out,
            Op::RowScale { x, factors },
            rg,
            KernelCategory::Aggregation,
        ))
    }

    fn binary(
        &mut self,
        gpu: &mut Gpu,
        a: Var,
        b: Var,
        category: KernelCategory,
        f: fn(
            &mut Gpu,
            StreamId,
            &DeviceMatrix,
            &DeviceMatrix,
            KernelCategory,
        ) -> Result<DeviceMatrix, OomError>,
        op: Op,
    ) -> Result<Var, OomError> {
        let out = {
            let (da, db) = (self.dev(a), self.dev(b));
            f(gpu, self.stream, &da, &db, category)?
        };
        let rg = self.requires(a) || self.requires(b);
        Ok(self.push_computed(gpu, out, op, rg, category))
    }

    /// Add.
    pub fn add(
        &mut self,
        gpu: &mut Gpu,
        a: Var,
        b: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.binary(gpu, a, b, category, k::add, Op::Add(a, b))
    }

    /// Sub.
    pub fn sub(
        &mut self,
        gpu: &mut Gpu,
        a: Var,
        b: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.binary(gpu, a, b, category, k::sub, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn hadamard(
        &mut self,
        gpu: &mut Gpu,
        a: Var,
        b: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.binary(gpu, a, b, category, k::hadamard, Op::Hadamard(a, b))
    }

    /// `mul · x + add` with scalar constants (e.g. `1 − z` in GRU gates).
    pub fn affine_const(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        mul: f32,
        add: f32,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let mut out = {
            let dx = self.dev(x);
            // One streaming kernel; the fused `·mul + add` has the same cost
            // shape as a scalar scale.
            k::scale(gpu, self.stream, &dx, mul, category)?
        };
        if add != 0.0 {
            let fixed = out.host().map(|v| v + add);
            out.store(fixed);
        }
        let rg = self.requires(x);
        Ok(self.push_computed(gpu, out, Op::AffineConst { x, mul }, rg, category))
    }

    /// Broadcast bias add (`b` is `1 × n`).
    pub fn add_bias(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        b: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let out = {
            let (dx, db) = (self.dev(x), self.dev(b));
            k::add_bias(gpu, self.stream, &dx, &db, category)?
        };
        let rg = self.requires(x) || self.requires(b);
        Ok(self.push_computed(gpu, out, Op::AddBias { x, b }, rg, category))
    }

    fn unary(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        category: KernelCategory,
        f: fn(&mut Gpu, StreamId, &DeviceMatrix, KernelCategory) -> Result<DeviceMatrix, OomError>,
        op: Op,
    ) -> Result<Var, OomError> {
        let out = {
            let dx = self.dev(x);
            f(gpu, self.stream, &dx, category)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(gpu, out, op, rg, category))
    }

    /// Sigmoid.
    pub fn sigmoid(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.unary(gpu, x, category, k::sigmoid, Op::Sigmoid(x))
    }

    /// Tanh.
    pub fn tanh(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.unary(gpu, x, category, k::tanh_act, Op::Tanh(x))
    }

    /// Relu.
    pub fn relu(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        self.unary(gpu, x, category, k::relu, Op::Relu(x))
    }

    /// Column-wise concatenation (coalescent feature construction).
    pub fn concat_cols(
        &mut self,
        gpu: &mut Gpu,
        parts: &[Var],
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        assert!(!parts.is_empty());
        let out = {
            let guards: Vec<DevRef<'_>> = parts.iter().map(|&p| self.dev(p)).collect();
            let refs: Vec<&DeviceMatrix> = guards.iter().map(|g| &**g).collect();
            k::concat_cols(gpu, self.stream, &refs, category)?
        };
        let rg = parts.iter().any(|&p| self.requires(p));
        Ok(self.push_computed(gpu, out, Op::ConcatCols(parts.to_vec()), rg, category))
    }

    /// `x × w` with the weight tile kept resident across row tiles — the
    /// stacked form of PiPAD's locality-optimized weight reuse: callers
    /// stack a partition's features with [`Tape::concat_rows`], multiply
    /// once, then [`Tape::slice_rows`] the results apart.
    pub fn matmul_weight_resident(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        w: Var,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let out = {
            let (a, b) = (self.dev(x), self.dev(w));
            k::gemm_device_weight_resident(gpu, self.stream, &a, &b, category)?
        };
        let rg = self.requires(x) || self.requires(w);
        Ok(self.push_computed(gpu, out, Op::MatMul(x, w), rg, category))
    }

    /// Row-wise concatenation (stacks a partition's per-snapshot features).
    pub fn concat_rows(
        &mut self,
        gpu: &mut Gpu,
        parts: &[Var],
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        assert!(!parts.is_empty());
        let out = {
            let guards: Vec<DevRef<'_>> = parts.iter().map(|&p| self.dev(p)).collect();
            let refs: Vec<&DeviceMatrix> = guards.iter().map(|g| &**g).collect();
            k::concat_rows(gpu, self.stream, &refs, category)?
        };
        let rg = parts.iter().any(|&p| self.requires(p));
        Ok(self.push_computed(gpu, out, Op::ConcatRows(parts.to_vec()), rg, category))
    }

    /// Row range `[from, to)` extraction.
    pub fn slice_rows(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        from: usize,
        to: usize,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let out = {
            let dx = self.dev(x);
            k::slice_rows(gpu, self.stream, &dx, from, to, category)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(gpu, out, Op::SliceRows { x, from }, rg, category))
    }

    /// Column range `[from, to)` extraction.
    pub fn slice_cols(
        &mut self,
        gpu: &mut Gpu,
        x: Var,
        from: usize,
        to: usize,
        category: KernelCategory,
    ) -> Result<Var, OomError> {
        let out = {
            let dx = self.dev(x);
            k::slice_cols(gpu, self.stream, &dx, from, to, category)?
        };
        let rg = self.requires(x);
        Ok(self.push_computed(gpu, out, Op::SliceCols { x, from }, rg, category))
    }

    // ---- loss & backward --------------------------------------------------

    /// MSE loss value of `pred` against `target`.
    pub fn mse_loss(&mut self, gpu: &mut Gpu, pred: Var, target: &Matrix) -> f32 {
        let dm = self.dev(pred);
        k::mse_loss(gpu, self.stream, &dm, target)
    }

    /// Seed `d(loss)/d(pred)` for MSE and run the reverse sweep.
    pub fn backward_mse(
        &mut self,
        gpu: &mut Gpu,
        pred: Var,
        target: &Matrix,
    ) -> Result<(), OomError> {
        let seed = {
            let dm = self.dev(pred);
            k::mse_grad(gpu, self.stream, &dm, target)?
        };
        self.backward_from(gpu, pred, seed)
    }

    /// Raw sum-of-squared-error of `pred` against `target` (no divide) —
    /// the shardable half of MSE: per-shard partials summed in canonical
    /// shard order, then divided once by the global element count,
    /// reproduce the whole-matrix [`Tape::mse_loss`] bit for bit.
    pub fn sse_loss(&mut self, gpu: &mut Gpu, pred: Var, target: &Matrix) -> f32 {
        let dm = self.dev(pred);
        k::sse_loss(gpu, self.stream, &dm, target)
    }

    /// Seed `d/d(pred)` of an MSE whose denominator is the **global**
    /// element count `denom` (not `pred`'s own), then run the reverse
    /// sweep — the backward counterpart of [`Tape::sse_loss`] for sharded
    /// training, where each shard holds a row block of the full prediction.
    pub fn backward_mse_denom(
        &mut self,
        gpu: &mut Gpu,
        pred: Var,
        target: &Matrix,
        denom: u64,
    ) -> Result<(), OomError> {
        let seed = {
            let dm = self.dev(pred);
            k::mse_grad_denom(gpu, self.stream, &dm, target, denom)?
        };
        self.backward_from(gpu, pred, seed)
    }

    /// Run a reverse sweep from `root` that deposits **only** the
    /// contributions of `seed`, merging into gradients already present from
    /// earlier sweeps instead of double-counting them: grads of nodes at or
    /// below `root` are stashed, the sweep runs on a clean slate, and the
    /// stash is added back. The sharded trainer's second sweep injects
    /// cross-shard halo gradients at interior activations this way.
    pub fn backward_seed_only(
        &mut self,
        gpu: &mut Gpu,
        root: Var,
        seed: DeviceMatrix,
    ) -> Result<(), OomError> {
        let mut stash: Vec<(usize, DeviceMatrix)> = Vec::new();
        for i in 0..=root.0 {
            if let Some(g) = self.nodes[i].grad.take() {
                stash.push((i, g));
            }
        }
        self.backward_from(gpu, root, seed)?;
        for (i, g) in stash {
            self.accumulate(gpu, Var(i), g)?;
        }
        Ok(())
    }

    /// Run the reverse sweep from `root` with an explicit seed gradient.
    pub fn backward_from(
        &mut self,
        gpu: &mut Gpu,
        root: Var,
        seed: DeviceMatrix,
    ) -> Result<(), OomError> {
        self.accumulate(gpu, root, seed)?;
        for i in (0..=root.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            self.step_backward(gpu, Var(i))?;
        }
        Ok(())
    }

    fn accumulate(&mut self, gpu: &mut Gpu, v: Var, g: DeviceMatrix) -> Result<(), OomError> {
        debug_assert_eq!(
            self.shape(v),
            (g.rows(), g.cols()),
            "gradient shape mismatch"
        );
        match self.nodes[v.0].grad.take() {
            None => self.nodes[v.0].grad = Some(g),
            Some(prev) => {
                let cat = self.nodes[v.0].category;
                let sum = k::add(gpu, self.stream, &prev, &g, cat)?;
                prev.release(gpu);
                g.release(gpu);
                self.nodes[v.0].grad = Some(sum);
            }
        }
        Ok(())
    }

    fn step_backward(&mut self, gpu: &mut Gpu, v: Var) -> Result<(), OomError> {
        let cat = self.nodes[v.0].category;
        let s = self.stream;
        // Detach this node's gradient for the duration of the step (children
        // never alias their own parents in a DAG built forward-only).
        let g = self.nodes[v.0].grad.take().expect("grad present");

        enum Plan {
            None,
            MatMul(Var, Var),
            Spmm(Rc<Csr>, Var, AggregationKernel),
            SpmmSliced(Rc<SlicedCsr>, Var, usize),
            SpmmSlicedRect(Rc<SlicedCsr>, Var),
            SpmmPartition(
                Option<Rc<SlicedCsr>>,
                Vec<Rc<SlicedCsr>>,
                Vec<Var>,
                Vec<Rc<Vec<f32>>>,
            ),
            RowScale(Var, Rc<Vec<f32>>),
            Gat(Rc<Csr>, Var, Var, Var, Rc<Vec<f32>>, Rc<Vec<f32>>, f32),
            Add(Var, Var),
            Sub(Var, Var),
            Hadamard(Var, Var),
            AffineConst(Var, f32),
            AddBias(Var, Var),
            Sigmoid(Var),
            Tanh(Var),
            Relu(Var),
            Concat(Vec<Var>),
            Slice(Var, usize),
            ConcatR(Vec<Var>),
            SliceR(Var, usize),
        }
        let plan = match &self.nodes[v.0].op {
            Op::Input | Op::Param => Plan::None,
            Op::MatMul(a, b) => Plan::MatMul(*a, *b),
            Op::Spmm { adj, x, kernel } => Plan::Spmm(Rc::clone(adj), *x, *kernel),
            Op::SpmmSliced { adj, x, s_per } => Plan::SpmmSliced(Rc::clone(adj), *x, *s_per),
            Op::SpmmSlicedRect { adj_t, x, .. } => Plan::SpmmSlicedRect(Rc::clone(adj_t), *x),
            Op::SpmmPartition {
                overlap,
                exclusives,
                xs,
                inv_degs,
            } => Plan::SpmmPartition(
                overlap.clone(),
                exclusives.clone(),
                xs.clone(),
                inv_degs.clone(),
            ),
            Op::RowScale { x, factors } => Plan::RowScale(*x, Rc::clone(factors)),
            Op::GatAggregate {
                adj,
                x,
                l,
                r,
                alpha,
                raw,
                negative_slope,
            } => Plan::Gat(
                Rc::clone(adj),
                *x,
                *l,
                *r,
                Rc::clone(alpha),
                Rc::clone(raw),
                *negative_slope,
            ),
            Op::Add(a, b) => Plan::Add(*a, *b),
            Op::Sub(a, b) => Plan::Sub(*a, *b),
            Op::Hadamard(a, b) => Plan::Hadamard(*a, *b),
            Op::AffineConst { x, mul } => Plan::AffineConst(*x, *mul),
            Op::AddBias { x, b } => Plan::AddBias(*x, *b),
            Op::Sigmoid(x) => Plan::Sigmoid(*x),
            Op::Tanh(x) => Plan::Tanh(*x),
            Op::Relu(x) => Plan::Relu(*x),
            Op::ConcatCols(parts) => Plan::Concat(parts.clone()),
            Op::SliceCols { x, from } => Plan::Slice(*x, *from),
            Op::ConcatRows(parts) => Plan::ConcatR(parts.clone()),
            Op::SliceRows { x, from } => Plan::SliceR(*x, *from),
        };

        match plan {
            Plan::None => {}
            Plan::MatMul(a, b) => {
                if self.requires(a) {
                    let da = {
                        let bm = self.dev(b);
                        k::gemm_nt_device(gpu, s, &g, &bm, cat)?
                    };
                    self.accumulate(gpu, a, da)?;
                }
                if self.requires(b) {
                    let db = {
                        let am = self.dev(a);
                        k::gemm_tn_device(gpu, s, &am, &g, cat)?
                    };
                    self.accumulate(gpu, b, db)?;
                }
            }
            Plan::Spmm(adj, x, kernel) => {
                if self.requires(x) {
                    // Symmetric adjacency: dX = Aᵀ g = A g.
                    let handle = k::DeviceCsr::resident(adj);
                    let dx = match kernel {
                        AggregationKernel::CooScatter => k::spmm_coo_scatter(gpu, s, &handle, &g)?,
                        AggregationKernel::GeSpmm => k::spmm_gespmm(gpu, s, &handle, &g)?,
                    };
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::SpmmSliced(adj, x, s_per) => {
                if self.requires(x) {
                    let handle = k::DeviceSliced::resident(adj);
                    let dx = k::spmm_sliced_parallel(gpu, s, &handle, &g, s_per)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::SpmmSlicedRect(adj_t, x) => {
                if self.requires(x) {
                    // dX = adjᵀ g via the stored transpose — no symmetry
                    // assumption for rectangular slices.
                    let handle = k::DeviceSliced::resident(adj_t);
                    let dx = k::spmm_sliced_parallel(gpu, s, &handle, &g, 1)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::SpmmPartition(overlap, exclusives, xs, inv_degs) => {
                // d/d(raw) = per-member scaled upstream; then the symmetric
                // adjacency maps it back: one parallel pass over the overlap
                // plus per-member exclusive passes.
                let size = xs.len();
                let g_scaled = k::row_scale_multi(gpu, s, &g, &inv_degs, cat)?;
                let over_grad = if let Some(ov) = overlap.as_ref().filter(|_| size > 1) {
                    let handle = k::DeviceSliced::resident(Rc::clone(ov));
                    Some(k::spmm_sliced_parallel(gpu, s, &handle, &g_scaled, size)?)
                } else {
                    None
                };
                let mut col = 0;
                for (kx, &x) in xs.iter().enumerate() {
                    let width = self.shape(x).1;
                    if !self.requires(x) {
                        col += width;
                        continue;
                    }
                    // Dead-member pruning: a member whose output never fed
                    // the loss has an all-zero upstream slice; launching its
                    // backward kernels would be pure waste (the unfused
                    // one-snapshot path skips them by graph reachability).
                    let member_is_zero = {
                        let gh = g_scaled.host();
                        (0..gh.rows())
                            .all(|r| gh.row(r)[col..col + width].iter().all(|&v| v == 0.0))
                    };
                    if member_is_zero {
                        col += width;
                        continue;
                    }
                    // member slice of the upstream (view)
                    let g_k = k::slice_cols(gpu, s, &g_scaled, col, col + width, cat)?;
                    let excl = &exclusives[kx];
                    let mut dx = if excl.nnz() > 0 || over_grad.is_none() {
                        let handle = k::DeviceSliced::resident(Rc::clone(excl));
                        k::spmm_sliced_parallel(gpu, s, &handle, &g_k, 1)?
                    } else {
                        DeviceMatrix::alloc(gpu, Matrix::zeros_in(self.shape(x).0, width))?
                    };
                    g_k.release(gpu);
                    if let Some(og) = &over_grad {
                        // accumulate the overlap contribution (atomic adds —
                        // already charged by the parallel kernel's outputs)
                        let slice = og.host().slice_cols(col, col + width);
                        let mut merged = dx.host().clone_in();
                        merged.add_assign(&slice);
                        slice.recycle();
                        dx.store(merged);
                    }
                    self.accumulate(gpu, x, dx)?;
                    col += width;
                }
                if let Some(og) = over_grad {
                    og.release(gpu);
                }
                g_scaled.release(gpu);
            }
            Plan::RowScale(x, factors) => {
                if self.requires(x) {
                    let dx = k::row_scale(gpu, s, &g, &factors, cat)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::Gat(adj, x, l, r, alpha, raw, slope) => {
                // dX: transposed weighted aggregation. The adjacency is
                // structurally symmetric but the attention values are not —
                // transpose the weighted matrix.
                let weighted = Csr::from_parts(
                    adj.n_rows(),
                    adj.n_cols(),
                    adj.row_offsets().to_vec(),
                    adj.col_indices().to_vec(),
                    alpha.as_ref().clone(),
                );
                let weighted_t = weighted.transpose();
                if self.requires(x) {
                    let handle = k::DeviceCsr::resident(Rc::new(weighted_t.clone()));
                    let dx = k::spmm_weighted(gpu, s, &handle, weighted_t.values(), &g)?;
                    self.accumulate(gpu, x, dx)?;
                }
                if self.requires(l) || self.requires(r) {
                    // dα_k = g[u] · x[v] — an SDDMM pass (charge like
                    // edge_scores with feature-width gathers).
                    let x_host = self.host(x);
                    let fdim = x_host.cols() as u64;
                    let nnz = adj.nnz() as u64;
                    let cost = pipad_gpu_sim::KernelCost::new("gat_sddmm_grad", cat)
                        .flops(2 * nnz * fdim)
                        .gmem(2 * nnz, 2 * nnz * fdim.div_ceil(8).max(1))
                        .uniform_blocks(nnz.div_ceil(128).max(1) as usize, 128);
                    gpu.launch(s, cost);
                    let g_host = g.host();
                    let mut dalpha = pipad_tensor::take_buf(adj.nnz());
                    dalpha.resize(adj.nnz(), 0.0);
                    let mut kidx = 0usize;
                    for u in 0..adj.n_rows() {
                        for &v in adj.row(u) {
                            let gu = g_host.row(u);
                            let xv = x_host.row(v as usize);
                            dalpha[kidx] = gu.iter().zip(xv).map(|(a, b)| a * b).sum();
                            kidx += 1;
                        }
                    }
                    // softmax backward per row, then leaky-relu mask; one
                    // more streaming pass over the edge arrays.
                    let cost = pipad_gpu_sim::KernelCost::new("gat_softmax_grad", cat)
                        .flops(4 * nnz)
                        .gmem((12 * nnz).div_ceil(128), (12 * nnz).div_ceil(32))
                        .uniform_blocks(nnz.div_ceil(128).max(1) as usize, 128);
                    gpu.launch(s, cost);
                    let offsets = adj.row_offsets();
                    let mut dl_host = Matrix::zeros_in(adj.n_rows(), 1);
                    let mut dr_host = Matrix::zeros_in(adj.n_cols(), 1);
                    for u in 0..adj.n_rows() {
                        let (a, b) = (offsets[u] as usize, offsets[u + 1] as usize);
                        if a == b {
                            continue;
                        }
                        let dot: f32 = (a..b).map(|kk| alpha[kk] * dalpha[kk]).sum();
                        for kk in a..b {
                            let dsoft = alpha[kk] * (dalpha[kk] - dot);
                            let de = if raw[kk] > 0.0 { dsoft } else { slope * dsoft };
                            dl_host[(u, 0)] += de;
                            let v = adj.row(u)[kk - a] as usize;
                            dr_host[(v, 0)] += de;
                        }
                    }
                    if self.requires(l) {
                        let dl = DeviceMatrix::alloc(gpu, dl_host)?;
                        self.accumulate(gpu, l, dl)?;
                    }
                    if self.requires(r) {
                        let dr = DeviceMatrix::alloc(gpu, dr_host)?;
                        self.accumulate(gpu, r, dr)?;
                    }
                    pipad_tensor::recycle_buf(dalpha);
                }
            }
            Plan::Add(a, b) => {
                for p in [a, b] {
                    if self.requires(p) {
                        let dp = k::scale(gpu, s, &g, 1.0, cat)?;
                        self.accumulate(gpu, p, dp)?;
                    }
                }
            }
            Plan::Sub(a, b) => {
                if self.requires(a) {
                    let da = k::scale(gpu, s, &g, 1.0, cat)?;
                    self.accumulate(gpu, a, da)?;
                }
                if self.requires(b) {
                    let db = k::scale(gpu, s, &g, -1.0, cat)?;
                    self.accumulate(gpu, b, db)?;
                }
            }
            Plan::Hadamard(a, b) => {
                if self.requires(a) {
                    let da = {
                        let bm = self.dev(b);
                        k::hadamard(gpu, s, &g, &bm, cat)?
                    };
                    self.accumulate(gpu, a, da)?;
                }
                if self.requires(b) {
                    let db = {
                        let am = self.dev(a);
                        k::hadamard(gpu, s, &g, &am, cat)?
                    };
                    self.accumulate(gpu, b, db)?;
                }
            }
            Plan::AffineConst(x, mul) => {
                if self.requires(x) {
                    let dx = k::scale(gpu, s, &g, mul, cat)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::AddBias(x, b) => {
                if self.requires(x) {
                    let dx = k::scale(gpu, s, &g, 1.0, cat)?;
                    self.accumulate(gpu, x, dx)?;
                }
                if self.requires(b) {
                    let db = k::col_sums(gpu, s, &g, cat)?;
                    self.accumulate(gpu, b, db)?;
                }
            }
            Plan::Sigmoid(x) => {
                if self.requires(x) {
                    let dx = {
                        let out = self.dev(v);
                        k::sigmoid_grad_from_out(gpu, s, &out, &g, cat)?
                    };
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::Tanh(x) => {
                if self.requires(x) {
                    let dx = {
                        let out = self.dev(v);
                        k::tanh_grad_from_out(gpu, s, &out, &g, cat)?
                    };
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::Relu(x) => {
                if self.requires(x) {
                    let dx = {
                        let xin = self.dev(x);
                        k::relu_grad_mask(gpu, s, &xin, &g, cat)?
                    };
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::Concat(parts) => {
                let mut off = 0;
                for p in parts {
                    let w = self.shape(p).1;
                    if self.requires(p) {
                        let dp = k::slice_cols(gpu, s, &g, off, off + w, cat)?;
                        self.accumulate(gpu, p, dp)?;
                    }
                    off += w;
                }
            }
            Plan::ConcatR(parts) => {
                let mut off = 0;
                for p in parts {
                    let h = self.shape(p).0;
                    if self.requires(p) {
                        let dp = k::slice_rows(gpu, s, &g, off, off + h, cat)?;
                        self.accumulate(gpu, p, dp)?;
                    }
                    off += h;
                }
            }
            Plan::SliceR(x, from) => {
                if self.requires(x) {
                    // View gradient: scatter into a zero parent (no kernel —
                    // the forward was a view; see kernels' concat_cols docs).
                    let (rows, cols) = self.shape(x);
                    let mut padded = Matrix::zeros_in(rows, cols);
                    for r in 0..g.rows() {
                        padded.row_mut(from + r).copy_from_slice(g.host().row(r));
                    }
                    let dx = DeviceMatrix::alloc(gpu, padded)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
            Plan::Slice(x, from) => {
                if self.requires(x) {
                    // View gradient (no kernel).
                    let (rows, cols) = self.shape(x);
                    let mut padded = Matrix::zeros_in(rows, cols);
                    for r in 0..rows {
                        padded.row_mut(r)[from..from + g.cols()].copy_from_slice(g.host().row(r));
                    }
                    let dx = DeviceMatrix::alloc(gpu, padded)?;
                    self.accumulate(gpu, x, dx)?;
                }
            }
        }
        // Restore the node's gradient (models may read it after backward).
        self.nodes[v.0].grad = Some(g);
        Ok(())
    }

    /// Free every device allocation owned by the tape (values of non-shared
    /// nodes and all gradients). Shared parameters stay resident.
    pub fn finish(self, gpu: &mut Gpu) {
        for node in self.nodes {
            if let Value::Owned(m) = node.value {
                m.release(gpu);
            }
            if let Some(g) = node.grad {
                g.release(gpu);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipad_gpu_sim::DeviceConfig;
    use pipad_tensor::{seeded_rng, uniform};

    fn setup() -> (Gpu, StreamId) {
        let g = Gpu::new(DeviceConfig::v100());
        let s = g.default_stream();
        (g, s)
    }

    fn shared(gpu: &mut Gpu, m: Matrix) -> SharedParam {
        Rc::new(RefCell::new(DeviceMatrix::alloc(gpu, m).unwrap()))
    }

    /// Numeric gradient of `loss(param)` via central differences.
    fn numeric_grad(
        gpu: &mut Gpu,
        param: &SharedParam,
        mut f: impl FnMut(&mut Gpu) -> f32,
    ) -> Matrix {
        let (rows, cols) = { param.borrow().host().shape() };
        let mut grad = Matrix::zeros(rows, cols);
        let eps = 1e-3f32;
        for r in 0..rows {
            for c in 0..cols {
                let orig = param.borrow().host()[(r, c)];
                let set = |p: &SharedParam, v: f32| {
                    let mut m = p.borrow().host().clone();
                    m[(r, c)] = v;
                    p.borrow_mut().store(m);
                };
                set(param, orig + eps);
                let hi = f(gpu);
                set(param, orig - eps);
                let lo = f(gpu);
                set(param, orig);
                grad[(r, c)] = (hi - lo) / (2.0 * eps);
            }
        }
        grad
    }

    #[test]
    fn linear_layer_gradients_match_numeric() {
        let (mut gpu, s) = setup();
        let x_host = uniform(&mut seeded_rng(1), 5, 3, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(2), 3, 2, 1.0));
        let b = shared(&mut gpu, uniform(&mut seeded_rng(3), 1, 2, 1.0));
        let target = uniform(&mut seeded_rng(4), 5, 2, 1.0);

        let run = |gpu: &mut Gpu, want_grad: bool, w: &SharedParam, b: &SharedParam| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let bv = tape.param(b);
            let h = tape.matmul(gpu, x, wv, KernelCategory::Update).unwrap();
            let h = tape.add_bias(gpu, h, bv, KernelCategory::Update).unwrap();
            let h = tape.tanh(gpu, h, KernelCategory::Update).unwrap();
            let loss = tape.mse_loss(gpu, h, &target);
            let grads = if want_grad {
                tape.backward_mse(gpu, h, &target).unwrap();
                Some((tape.grad(wv).unwrap(), tape.grad(bv).unwrap()))
            } else {
                None
            };
            tape.finish(gpu);
            (loss, grads)
        };

        let (_, grads) = run(&mut gpu, true, &w, &b);
        let (gw, gb) = grads.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, false, &w, &b).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
        let nb = numeric_grad(&mut gpu, &b, |gpu| run(gpu, false, &w, &b).0);
        assert!(gb.approx_eq(&nb, 2e-2), "analytic {gb:?} numeric {nb:?}");
    }

    #[test]
    fn gcn_like_chain_gradients_match_numeric() {
        let (mut gpu, s) = setup();
        let csr = Rc::new(Csr::from_edges(
            4,
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (0, 0),
                (1, 1),
                (2, 2),
                (3, 3),
            ],
        ));
        let factors = Rc::new(vec![0.5, 0.33, 0.33, 0.5]);
        let x_host = uniform(&mut seeded_rng(5), 4, 3, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(6), 3, 2, 1.0));
        let target = uniform(&mut seeded_rng(7), 4, 2, 1.0);

        let run = |gpu: &mut Gpu, w: &SharedParam, want_grad: bool| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let agg = tape
                .spmm(gpu, Rc::clone(&csr), x, AggregationKernel::CooScatter)
                .unwrap();
            let norm = tape.row_scale(gpu, agg, Rc::clone(&factors)).unwrap();
            let h = tape.matmul(gpu, norm, wv, KernelCategory::Update).unwrap();
            let h = tape.relu(gpu, h, KernelCategory::Update).unwrap();
            let loss = tape.mse_loss(gpu, h, &target);
            let grad = if want_grad {
                tape.backward_mse(gpu, h, &target).unwrap();
                Some(tape.grad(wv).unwrap())
            } else {
                None
            };
            tape.finish(gpu);
            (loss, grad)
        };

        let (_, gw) = run(&mut gpu, &w, true);
        let gw = gw.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
    }

    #[test]
    fn sliced_spmm_gradients_match_numeric() {
        let (mut gpu, s) = setup();
        let csr = Csr::from_edges(4, 4, &[(0, 1), (1, 0), (1, 3), (3, 1), (2, 2)]);
        let sliced = Rc::new(SlicedCsr::from_csr(&csr));
        let x_host = uniform(&mut seeded_rng(20), 4, 2, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(21), 2, 2, 1.0));
        let target = uniform(&mut seeded_rng(22), 4, 4, 1.0);

        let run = |gpu: &mut Gpu, w: &SharedParam, want_grad: bool| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let xa = tape.matmul(gpu, x, wv, KernelCategory::Update).unwrap();
            let xb = tape.tanh(gpu, xa, KernelCategory::Update).unwrap();
            // coalescent features of a 2-snapshot partition
            let co = tape
                .concat_cols(gpu, &[xa, xb], KernelCategory::Other)
                .unwrap();
            let agg = tape.spmm_sliced(gpu, Rc::clone(&sliced), co, 2).unwrap();
            let loss = tape.mse_loss(gpu, agg, &target);
            let grad = if want_grad {
                tape.backward_mse(gpu, agg, &target).unwrap();
                Some(tape.grad(wv).unwrap())
            } else {
                None
            };
            tape.finish(gpu);
            (loss, grad)
        };
        let (_, gw) = run(&mut gpu, &w, true);
        let gw = gw.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
    }

    #[test]
    fn rect_sliced_spmm_uses_transpose_in_backward() {
        let (mut gpu, s) = setup();
        // Asymmetric 4×4 graph; forward aggregates only the row slice
        // [1, 3) against all 4 feature rows — a genuinely rectangular op.
        let full = Csr::from_edges(4, 4, &[(0, 1), (1, 0), (1, 3), (2, 0), (2, 3), (3, 2)]);
        let local = full.slice_row_range(1, 3);
        let adj = Rc::new(SlicedCsr::from_csr(&local));
        let adj_t = Rc::new(SlicedCsr::from_csr(&local.transpose()));
        let x_host = uniform(&mut seeded_rng(50), 4, 2, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(51), 2, 2, 1.0));
        let target = uniform(&mut seeded_rng(52), 2, 2, 1.0);

        let run = |gpu: &mut Gpu, w: &SharedParam, want_grad: bool| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let h = tape.matmul(gpu, x, wv, KernelCategory::Update).unwrap();
            let agg = tape
                .spmm_sliced_rect(gpu, Rc::clone(&adj), Rc::clone(&adj_t), h)
                .unwrap();
            let loss = tape.mse_loss(gpu, agg, &target);
            let (value, grad) = if want_grad {
                tape.backward_mse(gpu, agg, &target).unwrap();
                (Some(tape.host(agg)), Some(tape.grad(wv).unwrap()))
            } else {
                (None, None)
            };
            tape.finish(gpu);
            (loss, value, grad)
        };

        let (_, value, gw) = run(&mut gpu, &w, true);
        // Value check against the dense reference on the row slice.
        let h_ref = pipad_tensor::gemm(&x_host, &w.borrow().host().clone());
        let expect = local.spmm_dense(&h_ref);
        assert!(value.unwrap().approx_eq(&expect, 1e-5));
        // Gradient check: backward must route through the transpose.
        let gw = gw.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
    }

    #[test]
    fn input_grad_leaf_receives_gradient() {
        let (mut gpu, s) = setup();
        let target = Matrix::zeros(2, 2);
        let mut tape = Tape::new(s);
        let a = tape.input(DeviceMatrix::alloc(&mut gpu, Matrix::full(2, 2, 1.0)).unwrap());
        let halo = tape.input_grad(DeviceMatrix::alloc(&mut gpu, Matrix::full(2, 2, 2.0)).unwrap());
        let h = tape.add(&mut gpu, a, halo, KernelCategory::Other).unwrap();
        tape.backward_mse(&mut gpu, h, &target).unwrap();
        // Unlike a plain input, the grad-carrying leaf keeps its gradient.
        assert!(tape.grad(a).is_none());
        let g = tape.grad(halo).expect("halo leaf keeps its gradient");
        assert_eq!(g.shape(), (2, 2));
        assert!(g.as_slice().iter().all(|&v| v != 0.0));
        tape.finish(&mut gpu);
    }

    #[test]
    fn seed_only_backward_merges_with_prior_sweep() {
        let (mut gpu, s) = setup();
        let x_host = uniform(&mut seeded_rng(60), 3, 2, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(61), 2, 2, 1.0));
        let seed_a = uniform(&mut seeded_rng(62), 3, 2, 1.0);
        let seed_b = uniform(&mut seeded_rng(63), 3, 2, 1.0);

        // Two sweeps (seed_a then seed_only seed_b) must equal one combined
        // sweep with seed_a + seed_b — gradients are linear in the seed.
        let run = |gpu: &mut Gpu, seeds: &[&Matrix]| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(&w);
            let h = tape.matmul(gpu, x, wv, KernelCategory::Update).unwrap();
            let h = tape.tanh(gpu, h, KernelCategory::Update).unwrap();
            for (i, seed) in seeds.iter().enumerate() {
                let dm = DeviceMatrix::alloc(gpu, (*seed).clone_in()).unwrap();
                if i == 0 {
                    tape.backward_from(gpu, h, dm).unwrap();
                } else {
                    tape.backward_seed_only(gpu, h, dm).unwrap();
                }
            }
            let g = tape.grad(wv).unwrap();
            tape.finish(gpu);
            g
        };

        let staged = run(&mut gpu, &[&seed_a, &seed_b]);
        let mut combined_seed = seed_a.clone_in();
        combined_seed.add_assign(&seed_b);
        let combined = run(&mut gpu, &[&combined_seed]);
        assert!(
            staged.approx_eq(&combined, 1e-5),
            "staged {staged:?} combined {combined:?}"
        );
        combined_seed.recycle();
    }

    #[test]
    fn spmm_partition_matches_reference_and_numeric_grad() {
        let (mut gpu, s) = setup();
        // Two symmetric snapshots sharing an overlap edge set.
        let shared = [(0u32, 1u32), (1, 0), (2, 3), (3, 2)];
        let mut ea = shared.to_vec();
        ea.extend([(1, 2), (2, 1)]);
        let mut eb = shared.to_vec();
        eb.extend([(0, 3), (3, 0)]);
        let a = Csr::from_edges(4, 4, &ea);
        let b = Csr::from_edges(4, 4, &eb);
        let split = pipad_sparse::extract_overlap(&[&a, &b]);
        let overlap = Rc::new(SlicedCsr::from_csr(&split.overlap));
        let exclusives: Vec<Rc<SlicedCsr>> = split
            .exclusives
            .iter()
            .map(|e| Rc::new(SlicedCsr::from_csr(e)))
            .collect();
        let inv: Vec<Rc<Vec<f32>>> = vec![
            Rc::new(vec![0.5, 0.25, 0.5, 1.0]),
            Rc::new(vec![1.0, 0.5, 0.25, 0.5]),
        ];
        let x_host = uniform(&mut seeded_rng(30), 4, 2, 1.0);
        let w = shared_param_helper(&mut gpu, uniform(&mut seeded_rng(31), 2, 2, 1.0));
        let target = uniform(&mut seeded_rng(32), 4, 4, 1.0);

        let run = |gpu: &mut Gpu, w: &SharedParam, want_grad: bool| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let h = tape.matmul(gpu, x, wv, KernelCategory::Update).unwrap();
            let h2 = tape.tanh(gpu, h, KernelCategory::Update).unwrap();
            let out = tape
                .spmm_partition(
                    gpu,
                    Some(Rc::clone(&overlap)),
                    exclusives.clone(),
                    vec![h, h2],
                    inv.clone(),
                )
                .unwrap();
            let loss = tape.mse_loss(gpu, out, &target);
            let value = tape.host(out);
            let grad = if want_grad {
                tape.backward_mse(gpu, out, &target).unwrap();
                Some(tape.grad(wv).unwrap())
            } else {
                None
            };
            tape.finish(gpu);
            (loss, value, grad)
        };

        // Value check against the unfused reference.
        let (_, value, gw) = run(&mut gpu, &w, true);
        let h_ref = {
            let hx = pipad_tensor::gemm(&x_host, &w.borrow().host().clone());
            let ht = hx.map(f32::tanh);
            (hx, ht)
        };
        for (m, (adj, hin, factors)) in [
            (0usize, (&a, &h_ref.0, &inv[0])),
            (1, (&b, &h_ref.1, &inv[1])),
        ] {
            let mut expect = adj.spmm_dense(hin);
            for r in 0..expect.rows() {
                let f = factors[r];
                for v in expect.row_mut(r) {
                    *v *= f;
                }
            }
            let got = value.slice_cols(m * 2, (m + 1) * 2);
            assert!(got.approx_eq(&expect, 1e-4), "member {m}");
        }

        // Gradient check.
        let gw = gw.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
    }

    #[test]
    fn gat_aggregate_gradients_match_numeric() {
        let (mut gpu, s) = setup();
        let adj = Rc::new(Csr::from_edges(
            4,
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (0, 0),
                (1, 1),
                (2, 2),
                (3, 3),
            ],
        ));
        let x_host = uniform(&mut seeded_rng(40), 4, 3, 1.0);
        let w = shared_param_helper(&mut gpu, uniform(&mut seeded_rng(41), 3, 3, 1.0));
        let al = shared_param_helper(&mut gpu, uniform(&mut seeded_rng(42), 3, 1, 1.0));
        let ar = shared_param_helper(&mut gpu, uniform(&mut seeded_rng(43), 3, 1, 1.0));
        let target = uniform(&mut seeded_rng(44), 4, 3, 1.0);

        let run = |gpu: &mut Gpu, want: bool| {
            let mut tape = Tape::new(s);
            let xv = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(&w);
            let alv = tape.param(&al);
            let arv = tape.param(&ar);
            let h = tape.matmul(gpu, xv, wv, KernelCategory::Update).unwrap();
            let lproj = tape
                .matmul(gpu, h, alv, KernelCategory::Aggregation)
                .unwrap();
            let rproj = tape
                .matmul(gpu, h, arv, KernelCategory::Aggregation)
                .unwrap();
            let out = tape
                .gat_aggregate(gpu, Rc::clone(&adj), h, lproj, rproj, 0.2)
                .unwrap();
            let loss = tape.mse_loss(gpu, out, &target);
            let grads = if want {
                tape.backward_mse(gpu, out, &target).unwrap();
                Some((
                    tape.grad(wv).unwrap(),
                    tape.grad(alv).unwrap(),
                    tape.grad(arv).unwrap(),
                ))
            } else {
                None
            };
            tape.finish(gpu);
            (loss, grads)
        };

        let (_, grads) = run(&mut gpu, true);
        let (gw, gal, gar) = grads.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, false).0);
        assert!(gw.approx_eq(&nw, 3e-2), "W: analytic {gw:?} numeric {nw:?}");
        let nal = numeric_grad(&mut gpu, &al, |gpu| run(gpu, false).0);
        assert!(
            gal.approx_eq(&nal, 3e-2),
            "a_l: analytic {gal:?} numeric {nal:?}"
        );
        let nar = numeric_grad(&mut gpu, &ar, |gpu| run(gpu, false).0);
        assert!(
            gar.approx_eq(&nar, 3e-2),
            "a_r: analytic {gar:?} numeric {nar:?}"
        );
    }

    fn shared_param_helper(gpu: &mut Gpu, m: Matrix) -> SharedParam {
        Rc::new(RefCell::new(DeviceMatrix::alloc(gpu, m).unwrap()))
    }

    #[test]
    fn gate_composite_gradients_match_numeric() {
        // z ⊙ tanh(h) + (1−z) ⊙ σ(h): hadamard + affine_const coverage.
        let (mut gpu, s) = setup();
        let x_host = uniform(&mut seeded_rng(8), 3, 4, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(9), 4, 2, 1.0));
        let target = uniform(&mut seeded_rng(10), 3, 2, 1.0);

        let run = |gpu: &mut Gpu, w: &SharedParam, want_grad: bool| {
            let mut tape = Tape::new(s);
            let x = tape.input(DeviceMatrix::alloc(gpu, x_host.clone()).unwrap());
            let wv = tape.param(w);
            let h = tape.matmul(gpu, x, wv, KernelCategory::Rnn).unwrap();
            let z = tape.sigmoid(gpu, h, KernelCategory::Rnn).unwrap();
            let t = tape.tanh(gpu, h, KernelCategory::Rnn).unwrap();
            let zt = tape.hadamard(gpu, z, t, KernelCategory::Rnn).unwrap();
            let omz = tape
                .affine_const(gpu, z, -1.0, 1.0, KernelCategory::Rnn)
                .unwrap();
            let sg = tape.sigmoid(gpu, h, KernelCategory::Rnn).unwrap();
            let rest = tape.hadamard(gpu, omz, sg, KernelCategory::Rnn).unwrap();
            let out = tape.add(gpu, zt, rest, KernelCategory::Rnn).unwrap();
            let loss = tape.mse_loss(gpu, out, &target);
            let grad = if want_grad {
                tape.backward_mse(gpu, out, &target).unwrap();
                Some(tape.grad(wv).unwrap())
            } else {
                None
            };
            tape.finish(gpu);
            (loss, grad)
        };
        let (_, gw) = run(&mut gpu, &w, true);
        let gw = gw.unwrap();
        let nw = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(gw.approx_eq(&nw, 2e-2), "analytic {gw:?} numeric {nw:?}");
    }

    #[test]
    fn concat_slice_round_trip_gradients() {
        let (mut gpu, s) = setup();
        let a_host = uniform(&mut seeded_rng(11), 3, 2, 1.0);
        let w = shared(&mut gpu, uniform(&mut seeded_rng(12), 3, 2, 1.0));
        let target = uniform(&mut seeded_rng(13), 3, 2, 1.0);
        let run = |gpu: &mut Gpu, w: &SharedParam, want: bool| {
            let mut tape = Tape::new(s);
            let a = tape.input(DeviceMatrix::alloc(gpu, a_host.clone()).unwrap());
            let wv = tape.param(w);
            let cat = tape
                .concat_cols(gpu, &[a, wv], KernelCategory::Other)
                .unwrap();
            let right = tape
                .slice_cols(gpu, cat, 2, 4, KernelCategory::Other)
                .unwrap();
            let loss = tape.mse_loss(gpu, right, &target);
            let g = if want {
                tape.backward_mse(gpu, right, &target).unwrap();
                Some(tape.grad(wv).unwrap())
            } else {
                None
            };
            tape.finish(gpu);
            (loss, g)
        };
        let (_, g) = run(&mut gpu, &w, true);
        let g = g.unwrap();
        let n = numeric_grad(&mut gpu, &w, |gpu| run(gpu, &w, false).0);
        assert!(g.approx_eq(&n, 2e-2));
    }

    #[test]
    fn finish_releases_all_tape_memory() {
        let (mut gpu, s) = setup();
        let w = shared(&mut gpu, uniform(&mut seeded_rng(14), 4, 4, 1.0));
        let baseline = gpu.mem().in_use();
        let target = Matrix::zeros(4, 4);
        let mut tape = Tape::new(s);
        let x = tape.input(DeviceMatrix::alloc(&mut gpu, Matrix::full(4, 4, 1.0)).unwrap());
        let wv = tape.param(&w);
        let h = tape
            .matmul(&mut gpu, x, wv, KernelCategory::Update)
            .unwrap();
        let h = tape.relu(&mut gpu, h, KernelCategory::Update).unwrap();
        tape.backward_mse(&mut gpu, h, &target).unwrap();
        assert!(gpu.mem().in_use() > baseline);
        tape.finish(&mut gpu);
        assert_eq!(gpu.mem().in_use(), baseline, "tape must free everything");
    }

    #[test]
    fn backward_launches_are_profiled() {
        let (mut gpu, s) = setup();
        let w = shared(&mut gpu, uniform(&mut seeded_rng(15), 3, 3, 1.0));
        let target = Matrix::zeros(2, 3);
        let snap = gpu.profiler().snapshot();
        let mut tape = Tape::new(s);
        let x = tape.input(DeviceMatrix::alloc(&mut gpu, Matrix::full(2, 3, 1.0)).unwrap());
        let wv = tape.param(&w);
        let h = tape
            .matmul(&mut gpu, x, wv, KernelCategory::Update)
            .unwrap();
        let forward_launches = gpu.profiler().window(snap).kernel_launches;
        tape.backward_mse(&mut gpu, h, &target).unwrap();
        let total = gpu.profiler().window(snap).kernel_launches;
        assert!(total > forward_launches, "backward must launch kernels");
        tape.finish(&mut gpu);
    }

    #[test]
    fn input_branches_are_skipped_in_backward() {
        let (mut gpu, s) = setup();
        let target = Matrix::zeros(2, 2);
        let mut tape = Tape::new(s);
        let a = tape.input(DeviceMatrix::alloc(&mut gpu, Matrix::full(2, 2, 1.0)).unwrap());
        let b = tape.input(DeviceMatrix::alloc(&mut gpu, Matrix::full(2, 2, 2.0)).unwrap());
        let h = tape.add(&mut gpu, a, b, KernelCategory::Other).unwrap();
        tape.backward_mse(&mut gpu, h, &target).unwrap();
        // Gradients never propagate into pure inputs.
        assert!(tape.grad(a).is_none());
        assert!(tape.grad(b).is_none());
        tape.finish(&mut gpu);
    }
}
