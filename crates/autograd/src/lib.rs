#![warn(missing_docs)]
//! # pipad-autograd
//!
//! Tape-based reverse-mode automatic differentiation whose forward **and**
//! backward passes run as accounted device kernels on the simulated GPU.
//! Every DGNN model in the reproduction (MPNN-LSTM, EvolveGCN, T-GCN) trains
//! through this tape, so the profiler sees the full kernel stream of a real
//! training iteration — forward aggregation/update/RNN work, the loss pair,
//! and the mirrored backward kernels.
//!
//! ## Design
//!
//! * A [`Tape`] is an arena of nodes; [`Var`] is an index into it.
//! * Leaf nodes are [`Tape::input`] (no gradient) or shared parameters
//!   registered with [`Tape::param`] (gradient accumulated on the tape and
//!   read back by the optimizer).
//! * Aggregation ops require **symmetric** adjacency (the generators produce
//!   undirected graphs), so the backward SpMM reuses the forward operator —
//!   PiPAD's overlap sharing then works identically in both directions.
//!   GE-SpMM instead keeps a CSC copy resident (see
//!   `pipad_kernels::upload_csr_with_csc`), matching the paper's note that
//!   this costs PyGT-G extra transfer volume.
//! * [`Tape::finish`] frees every device allocation the tape made; leaked
//!   simulated memory would corrupt the tuner's peak statistics, so tests
//!   assert the device returns to its pre-tape footprint.

mod tape;

pub use tape::{AggregationKernel, SharedParam, Tape, Var};
