#![warn(missing_docs)]
//! # pipad-baselines
//!
//! The four comparison systems of the paper's evaluation (§5.1), re-built
//! on the same models, autodiff tape and simulated GPU as PiPAD itself:
//!
//! | trainer | transfer | aggregation kernel | inter-frame reuse |
//! |---|---|---|---|
//! | **PyGT** | synchronous, pageable, COO wire format | PyG scatter | — |
//! | **PyGT-A** | asynchronous, pinned, COO | PyG scatter | — |
//! | **PyGT-R** | asynchronous, pinned, COO | PyG scatter | layer-1 aggregation cache |
//! | **PyGT-G** | asynchronous, pinned, CSR **+ CSC** (GE-SpMM's backward requirement) | GE-SpMM | layer-1 aggregation cache |
//!
//! All four follow the canonical **one-snapshot-at-a-time** paradigm: every
//! snapshot of every frame is shipped and aggregated individually, which is
//! exactly the redundancy PiPAD removes.

mod checkpoint;
mod esdg;
mod executor;
mod reuse;
mod trainer;

pub use checkpoint::{
    baseline_fingerprint, encode_baseline_checkpoint, restore_baseline_checkpoint,
    BaselineCkptInputs, BaselineRestoredState,
};
pub use esdg::train_esdg;
pub use executor::BaselineExecutor;
pub use reuse::ReuseCache;
pub use trainer::{train_baseline, train_baseline_resumable, BaselineKind};
