//! Inter-frame reuse cache (paper §4.4, baseline variant).
//!
//! The layer-1 aggregation `D̂⁻¹ Â X_t` depends only on the snapshot itself,
//! never on model parameters, so it can be computed once (during the
//! preparing epochs) and reused for every later frame and epoch. The
//! baseline integration (PyGT-R / PyGT-G) keeps the results in **CPU
//! memory**: a hit skips the aggregation kernel and — for models with no
//! hidden-layer aggregation — the adjacency transfer, but the cached matrix
//! itself still crosses PCIe each time (§4.4 "those aggregation results
//! still need to be transferred to GPU for the next frame").

use pipad_tensor::Matrix;
use std::collections::HashMap;

/// CPU-side cache of per-snapshot layer-1 aggregation results, keyed by
/// global snapshot index.
#[derive(Debug, Default)]
pub struct ReuseCache {
    store: HashMap<usize, Matrix>,
    hits: u64,
    misses: u64,
}

impl ReuseCache {
    /// Create a new instance.
    pub fn new() -> Self {
        ReuseCache::default()
    }

    /// Look up an entry.
    pub fn get(&mut self, snapshot: usize) -> Option<&Matrix> {
        if self.store.contains_key(&snapshot) {
            self.hits += 1;
            self.store.get(&snapshot)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Whether the entry is present.
    pub fn contains(&self, snapshot: usize) -> bool {
        self.store.contains_key(&snapshot)
    }

    /// Insert an entry.
    pub fn insert(&mut self, snapshot: usize, agg: Matrix) {
        self.store.insert(snapshot, agg);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// CPU memory held by the cache, in bytes.
    pub fn bytes(&self) -> u64 {
        self.store.values().map(Matrix::bytes).sum()
    }

    /// Entries sorted by snapshot index — the deterministic iteration
    /// order checkpoint encoding requires (the backing map is a
    /// `HashMap`, whose raw order varies run to run).
    pub fn entries_sorted(&self) -> Vec<(usize, &Matrix)> {
        let mut v: Vec<(usize, &Matrix)> = self.store.iter().map(|(&k, m)| (k, m)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Overwrite the hit/miss counters (checkpoint restore: the resumed
    /// run continues the original run's statistics).
    pub fn restore_counters(&mut self, hits: u64, misses: u64) {
        self.hits = hits;
        self.misses = misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c = ReuseCache::new();
        assert!(c.get(0).is_none());
        c.insert(0, Matrix::full(2, 2, 1.0));
        assert!(c.get(0).is_some());
        assert!(c.get(1).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 16);
    }

    #[test]
    fn insert_overwrites() {
        let mut c = ReuseCache::new();
        c.insert(3, Matrix::full(1, 1, 1.0));
        c.insert(3, Matrix::full(1, 1, 2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(3).unwrap()[(0, 0)], 2.0);
    }
}
