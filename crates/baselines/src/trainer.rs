//! End-to-end training loops for the PyGT baseline family.

use crate::checkpoint::{
    baseline_fingerprint, encode_baseline_checkpoint, restore_baseline_checkpoint,
    BaselineCkptInputs,
};
use crate::executor::{BaselineExecutor, StageOptions};
use crate::reuse::ReuseCache;
use pipad_autograd::{AggregationKernel, Tape};
use pipad_ckpt::{latest_checkpoint, write_checkpoint, Checkpoint, CheckpointPolicy};
use pipad_dyngraph::{DynamicGraph, FrameIter};
use pipad_gpu_sim::{ArgValue, DeviceFault, Gpu, Lane, OomError, SimNanos, TraceKind};
use pipad_models::{
    build_model, EpochReport, HostAllocStats, ModelKind, TrainReport, TrainingConfig,
};
use pipad_sparse::Csr;
use pipad_tensor::Matrix;

/// Which baseline variant to run (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Vanilla PyTorch Geometric Temporal: synchronous pageable transfers.
    Pygt,
    /// + asynchronous pinned transfers on a copy stream.
    PygtA,
    /// + inter-frame reuse of layer-1 aggregations.
    PygtR,
    /// PyGT-R with the GE-SpMM aggregation kernel (needs CSR+CSC resident).
    PygtG,
}

impl BaselineKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Pygt => "PyGT",
            BaselineKind::PygtA => "PyGT-A",
            BaselineKind::PygtR => "PyGT-R",
            BaselineKind::PygtG => "PyGT-G",
        }
    }

    /// ALL.
    pub const ALL: [BaselineKind; 4] = [
        BaselineKind::Pygt,
        BaselineKind::PygtA,
        BaselineKind::PygtR,
        BaselineKind::PygtG,
    ];

    fn async_transfer(self) -> bool {
        !matches!(self, BaselineKind::Pygt)
    }

    fn has_reuse(self) -> bool {
        matches!(self, BaselineKind::PygtR | BaselineKind::PygtG)
    }

    fn kernel(self) -> AggregationKernel {
        match self {
            BaselineKind::PygtG => AggregationKernel::GeSpmm,
            _ => AggregationKernel::CooScatter,
        }
    }

    fn with_csc(self) -> bool {
        matches!(self, BaselineKind::PygtG)
    }
}

/// Train `model_kind` on `graph` with the chosen baseline and return the
/// full report. `hidden` follows §5.1 (32 for small datasets, 6 for large).
pub fn train_baseline(
    gpu: &mut Gpu,
    kind: BaselineKind,
    model_kind: ModelKind,
    graph: &DynamicGraph,
    hidden: usize,
    cfg: &TrainingConfig,
) -> Result<TrainReport, OomError> {
    train_baseline_resumable(gpu, kind, model_kind, graph, hidden, cfg, None).map_err(|e| match e {
        DeviceFault::Oom(oom) => oom,
        other => panic!("baseline trainer without a fault plan raised {other}"),
    })
}

/// [`train_baseline`] with checkpoint/restore: when `checkpoint` is set,
/// the trainer restores from the newest checkpoint in the policy's
/// directory (if any) before the epoch loop and writes one every
/// `every_epochs` epochs. A run killed by an injected `crash` fault and
/// resumed this way produces bit-identical losses to an uninterrupted
/// run — the same contract `train_pipad` holds, minus the trace clause
/// (baselines keep the device's kernel/transfer trace only).
pub fn train_baseline_resumable(
    gpu: &mut Gpu,
    kind: BaselineKind,
    model_kind: ModelKind,
    graph: &DynamicGraph,
    hidden: usize,
    cfg: &TrainingConfig,
    checkpoint: Option<&CheckpointPolicy>,
) -> Result<TrainReport, DeviceFault> {
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    let model = build_model(gpu, model_kind, graph.feature_dim(), hidden, cfg.seed)?;
    let mut reuse = if kind.has_reuse() {
        Some(ReuseCache::new())
    } else {
        None
    };
    let opts = StageOptions {
        async_transfer: kind.async_transfer(),
        with_csc: kind.with_csc(),
        kernel: kind.kernel(),
        needs_adjacency_when_cached: model.needs_hidden_aggregation(),
    };

    let mut host_cursor = SimNanos::ZERO;
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut steady_snap = None;
    let mut steady_t0 = SimNanos::ZERO;
    let run_t0 = gpu.synchronize();

    // ---- restore-on-start --------------------------------------------------
    // Same scheme as `train_pipad`: the prologue above rebuilt the model
    // deterministically; restore overwrites parameter values in place,
    // refills the CPU reuse cache, then rewinds the device clock + host
    // cursor so resumed epochs land on the original simulated timeline.
    let fingerprint = baseline_fingerprint(kind, model_kind, &graph.name, hidden, cfg);
    let mut start_epoch = 0usize;
    if let Some(policy) = checkpoint {
        if let Some((ck_epoch, path)) =
            latest_checkpoint(&policy.dir).expect("checkpoint directory unreadable")
        {
            let ckpt = Checkpoint::read(&path)
                .unwrap_or_else(|e| panic!("checkpoint {} is unreadable: {e}", path.display()));
            let restored =
                restore_baseline_checkpoint(&ckpt, &fingerprint, model.as_ref(), reuse.as_mut())
                    .unwrap_or_else(|e| {
                        panic!("checkpoint {} failed to restore: {e}", path.display())
                    });
            steady_t0 = restored.steady_t0;
            epochs = restored.epochs_done;
            start_epoch = restored.next_epoch;
            let t = gpu.now().max(host_cursor);
            gpu.trace_mut().instant(
                "checkpoint_restore",
                Lane::Control,
                t,
                vec![
                    ("epoch", ArgValue::U64(ck_epoch as u64)),
                    ("next_epoch", ArgValue::U64(start_epoch as u64)),
                ],
            );
            gpu.restore_clock(&restored.clock);
            host_cursor = restored.host_cursor;
        }
    }

    for epoch in start_epoch..cfg.epochs {
        let t0 = gpu.synchronize().max(host_cursor);
        let alloc0 = HostAllocStats::capture();
        if epoch == cfg.preparing_epochs.min(cfg.epochs - 1) {
            steady_snap = Some(gpu.profiler().snapshot());
            steady_t0 = t0;
        }
        let mut losses = Vec::new();
        for frame in FrameIter::new(graph, cfg.window) {
            let frame_slots: Vec<(usize, &Csr, &Matrix)> = frame
                .snapshots()
                .iter()
                .enumerate()
                .map(|(i, s)| (frame.global_index(i), &s.adj, &s.features))
                .collect();
            let mut exec = BaselineExecutor::stage(
                gpu,
                &frame_slots,
                opts,
                reuse.as_mut(),
                compute,
                copy,
                &mut host_cursor,
            )?;
            let mut tape = Tape::new(compute);
            let out = model.forward_frame(gpu, &mut tape, &mut exec)?;
            let target = graph.target_for(frame.last_index());
            losses.push(tape.mse_loss(gpu, out.pred, target));
            tape.backward_mse(gpu, out.pred, target)?;
            out.binder.apply_sgd(gpu, compute, &tape, cfg.lr);
            tape.finish(gpu);
            exec.finish(gpu);
            if let Some(c) = gpu.take_crash() {
                return Err(DeviceFault::Crash(c));
            }
        }
        let t1 = gpu.synchronize().max(host_cursor);
        let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        let epoch_peak = gpu.mem().peak();
        // Same epoch-span schema as the PiPAD trainer, so the pipeline
        // analyzer (pipad-metrics) can window baseline runs identically.
        gpu.trace_mut().span(
            "epoch",
            TraceKind::Span,
            Lane::Control,
            t0,
            t1,
            vec![
                ("epoch", ArgValue::U64(epoch as u64)),
                (
                    "preparing",
                    ArgValue::Bool(epoch < cfg.preparing_epochs.min(cfg.epochs - 1)),
                ),
                ("mean_loss", ArgValue::F64(mean_loss as f64)),
                ("sim_time_ns", ArgValue::U64((t1 - t0).as_nanos())),
                ("peak_mem", ArgValue::U64(epoch_peak)),
            ],
        );
        epochs.push(EpochReport {
            epoch,
            mean_loss,
            sim_time: t1 - t0,
            alloc: HostAllocStats::capture().since(&alloc0),
        });

        if let Some(policy) = checkpoint {
            if policy.should_write(epoch) {
                let writer = encode_baseline_checkpoint(&BaselineCkptInputs {
                    fingerprint: &fingerprint,
                    next_epoch: epoch + 1,
                    steady_t0,
                    clock: gpu.clock(),
                    host_cursor,
                    model: model.as_ref(),
                    reuse: reuse.as_ref(),
                    fault_stats: gpu.fault_stats(),
                    epochs_done: &epochs,
                    gen_config: policy.gen_config.as_ref(),
                });
                let (_, bytes) = write_checkpoint(&policy.dir, epoch, writer, policy.keep)
                    .expect("checkpoint write failed");
                gpu.trace_mut().instant(
                    "checkpoint_write",
                    Lane::Control,
                    t1,
                    vec![
                        ("epoch", ArgValue::U64(epoch as u64)),
                        ("bytes", ArgValue::U64(bytes)),
                    ],
                );
            }
        }
    }

    let run_t1 = gpu.synchronize().max(host_cursor);
    let steady_snap = steady_snap.unwrap_or_else(|| gpu.profiler().snapshot());
    let steady = gpu.profiler().window(steady_snap);
    let steady_epochs = (cfg.epochs - cfg.preparing_epochs.min(cfg.epochs - 1)).max(1);
    Ok(TrainReport {
        trainer: kind.name().to_string(),
        model: model_kind,
        dataset: graph.name.clone(),
        epochs,
        total_time: run_t1 - run_t0,
        steady_epoch_time: SimNanos::from_nanos(
            (run_t1 - steady_t0).as_nanos() / steady_epochs as u64,
        ),
        steady,
        peak_mem: gpu.mem().peak(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipad_dyngraph::{DatasetId, Scale};
    use pipad_gpu_sim::DeviceConfig;

    fn tiny_graph() -> DynamicGraph {
        DatasetId::Covid19England.gen_config(Scale::Tiny).generate()
    }

    fn tiny_cfg() -> TrainingConfig {
        TrainingConfig {
            window: 8,
            epochs: 3,
            preparing_epochs: 1,
            lr: 0.01,
            seed: 3,
        }
    }

    #[test]
    fn pygt_trains_and_reports() {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let g = tiny_graph();
        let r = train_baseline(
            &mut gpu,
            BaselineKind::Pygt,
            ModelKind::TGcn,
            &g,
            8,
            &tiny_cfg(),
        )
        .unwrap();
        assert_eq!(r.epochs.len(), 3);
        assert!(r.total_time > SimNanos::ZERO);
        assert!(r.steady_epoch_time > SimNanos::ZERO);
        assert!(r.steady.h2d_bytes > 0);
        // loss finite and generally improving
        let l = r.losses();
        assert!(l.iter().all(|x| x.is_finite()));
        assert!(l.last().unwrap() <= &l[0]);
    }

    #[test]
    fn async_beats_sync() {
        let g = tiny_graph();
        let cfg = tiny_cfg();
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let sync =
            train_baseline(&mut g1, BaselineKind::Pygt, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let asynch =
            train_baseline(&mut g2, BaselineKind::PygtA, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        assert!(
            asynch.steady_epoch_time < sync.steady_epoch_time,
            "async {} vs sync {}",
            asynch.steady_epoch_time,
            sync.steady_epoch_time
        );
    }

    #[test]
    fn reuse_beats_async_on_tgcn() {
        // T-GCN: all aggregation is cacheable → PyGT-R drops both the
        // aggregation kernels and the adjacency transfers.
        let g = tiny_graph();
        let cfg = tiny_cfg();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let a = train_baseline(&mut g2, BaselineKind::PygtA, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        let mut g3 = Gpu::new(DeviceConfig::v100());
        let r = train_baseline(&mut g3, BaselineKind::PygtR, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        assert!(
            r.steady_epoch_time < a.steady_epoch_time,
            "reuse {} vs async {}",
            r.steady_epoch_time,
            a.steady_epoch_time
        );
        assert!(r.steady.h2d_bytes < a.steady.h2d_bytes);
    }

    #[test]
    fn all_variants_converge_identically_in_values() {
        // Different execution strategies must not change the numerics: same
        // model seed + same data → same loss curve.
        let g = tiny_graph();
        let cfg = tiny_cfg();
        let mut curves = Vec::new();
        for kind in BaselineKind::ALL {
            let mut gpu = Gpu::new(DeviceConfig::v100());
            let r = train_baseline(&mut gpu, kind, ModelKind::MpnnLstm, &g, 8, &cfg).unwrap();
            curves.push(r.losses());
        }
        for c in &curves[1..] {
            for (a, b) in c.iter().zip(&curves[0]) {
                assert!((a - b).abs() < 1e-4, "{curves:?}");
            }
        }
    }

    #[test]
    fn kill_and_resume_reproduces_baseline_losses() {
        use pipad_ckpt::CheckpointPolicy;
        use pipad_gpu_sim::{CrashCounter, CrashPoint, DeviceFault, FaultPlan};
        let g = tiny_graph();
        let cfg = TrainingConfig {
            window: 8,
            epochs: 6,
            preparing_epochs: 2,
            lr: 0.01,
            seed: 3,
        };
        let base =
            std::env::temp_dir().join(format!("pipad-baseline-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let policy_for = |dir: &str| CheckpointPolicy::new(base.join(dir), 2);

        // PyGT-R so the restore path also refills the CPU reuse cache.
        let kind = BaselineKind::PygtR;

        let mut g1 = Gpu::new(pipad_gpu_sim::DeviceConfig::v100());
        let reference = train_baseline_resumable(
            &mut g1,
            kind,
            ModelKind::TGcn,
            &g,
            8,
            &cfg,
            Some(&policy_for("ref")),
        )
        .unwrap();
        let total_launches = g1.op_counters().launches;

        let mut g2 = Gpu::new(pipad_gpu_sim::DeviceConfig::v100());
        g2.install_faults(FaultPlan {
            crash: Some(CrashPoint {
                counter: CrashCounter::Launches,
                at: total_launches * 7 / 10,
            }),
            ..Default::default()
        });
        let err = train_baseline_resumable(
            &mut g2,
            kind,
            ModelKind::TGcn,
            &g,
            8,
            &cfg,
            Some(&policy_for("killed")),
        )
        .expect_err("crash fault must abort the run");
        assert!(matches!(err, DeviceFault::Crash(_)), "{err}");

        let mut g3 = Gpu::new(pipad_gpu_sim::DeviceConfig::v100());
        let resumed = train_baseline_resumable(
            &mut g3,
            kind,
            ModelKind::TGcn,
            &g,
            8,
            &cfg,
            Some(&policy_for("killed")),
        )
        .unwrap();

        let a: Vec<u32> = reference.losses().iter().map(|l| l.to_bits()).collect();
        let b: Vec<u32> = resumed.losses().iter().map(|l| l.to_bits()).collect();
        assert_eq!(a, b, "kill-and-resume changed the baseline loss trajectory");
        // Resumed epochs also land on the original simulated timeline.
        for (ra, rb) in reference.epochs.iter().zip(&resumed.epochs) {
            assert_eq!(
                ra.sim_time, rb.sim_time,
                "epoch {} sim_time drifted",
                ra.epoch
            );
        }

        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn gespmm_variant_ships_more_adjacency_bytes() {
        let g = tiny_graph();
        let cfg = tiny_cfg();
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let r = train_baseline(
            &mut g1,
            BaselineKind::PygtR,
            ModelKind::EvolveGcn,
            &g,
            8,
            &cfg,
        )
        .unwrap();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let gq = train_baseline(
            &mut g2,
            BaselineKind::PygtG,
            ModelKind::EvolveGcn,
            &g,
            8,
            &cfg,
        )
        .unwrap();
        assert!(gq.steady.h2d_bytes > r.steady.h2d_bytes);
    }
}
