//! The one-snapshot-at-a-time executor behind all four PyGT variants.
//!
//! `stage` issues the frame's host preparation and PCIe transfers up front
//! (per snapshot, in order); the async variants place them on a dedicated
//! copy stream from pinned memory so they overlap compute, while plain PyGT
//! uses pageable copies that stall the device — reproducing the §3.1
//! bottleneck.

use crate::reuse::ReuseCache;
use pipad_autograd::{AggregationKernel, Tape, Var};
use pipad_gpu_sim::{Event, Gpu, KernelCategory, OomError, SimNanos, StreamId};
use pipad_kernels::{upload_coo, upload_csr_with_csc, upload_matrix, DeviceCsr, DeviceMatrix};
use pipad_models::{normalize_snapshot, GnnExecutor, NormalizedAdj};
use pipad_sparse::Csr;
use pipad_tensor::Matrix;
use std::rc::Rc;

/// Per-snapshot staged state.
struct Slot {
    global_idx: usize,
    norm: NormalizedAdj,
    /// Raw features, uploaded unless a cached aggregation replaced them.
    features: Option<DeviceMatrix>,
    /// Cached layer-1 aggregation shipped from the CPU-side reuse store.
    cached_agg: Option<DeviceMatrix>,
    /// Adjacency on device (absent when reuse made it unnecessary).
    adj: Option<DeviceCsr>,
    ready: Event,
}

/// Options distinguishing the PyGT variants.
#[derive(Clone, Copy, Debug)]
pub struct StageOptions {
    /// Pinned-memory, copy-stream transfers (PyGT-A and later).
    pub async_transfer: bool,
    /// Ship CSR+CSC instead of COO (PyGT-G / GE-SpMM requirement).
    pub with_csc: bool,
    /// Aggregation kernel.
    pub kernel: AggregationKernel,
    /// The model still aggregates hidden features (layer ≥ 2), so the
    /// adjacency must be resident even on a reuse hit.
    pub needs_adjacency_when_cached: bool,
}

/// Executor for the PyGT baseline family.
pub struct BaselineExecutor<'c> {
    slots: Vec<Slot>,
    kernel: AggregationKernel,
    reuse: Option<&'c mut ReuseCache>,
    compute: StreamId,
}

impl<'c> BaselineExecutor<'c> {
    /// Stage a frame: host prep + transfers for each snapshot in order.
    /// `host_cursor` is the trainer's CPU lane; it advances past the prep
    /// work (and past pageable copies, which block the host).
    #[allow(clippy::too_many_arguments)]
    pub fn stage(
        gpu: &mut Gpu,
        frame: &[(usize, &Csr, &Matrix)],
        opts: StageOptions,
        mut reuse: Option<&'c mut ReuseCache>,
        compute: StreamId,
        copy: StreamId,
        host_cursor: &mut SimNanos,
    ) -> Result<Self, OomError> {
        let pinned = opts.async_transfer;
        let stream = if opts.async_transfer { copy } else { compute };
        let mut slots = Vec::with_capacity(frame.len());
        for &(global_idx, adj, feats) in frame {
            let cached_host = reuse
                .as_mut()
                .and_then(|c| c.get(global_idx).map(pipad_tensor::Matrix::clone_in));
            // Host-side preparation (framework overhead + staging copy).
            let moved_bytes = match &cached_host {
                Some(cached) => cached.bytes(),
                None => feats.bytes() + adj.bytes(),
            };
            let prep = SimNanos::from_nanos(gpu.cfg().host_op_fixed_ns)
                + SimNanos::from_bytes(moved_bytes, gpu.cfg().host_bytes_per_us);
            let (_, host_end) = gpu.host_op("frame_prep", *host_cursor, prep);
            *host_cursor = host_end;
            gpu.stream_wait_host(stream, host_end);

            let norm = normalize_snapshot(adj);
            let needs_adj = cached_host.is_none() || opts.needs_adjacency_when_cached;
            let adj_dev = if needs_adj {
                let shared = Rc::clone(&norm.adj_hat);
                Some(if opts.with_csc {
                    upload_csr_with_csc(gpu, stream, shared, pinned)?
                } else {
                    upload_coo(gpu, stream, shared, pinned)?
                })
            } else {
                None
            };
            let (features, cached_agg) = match cached_host {
                Some(agg) => (None, Some(upload_matrix(gpu, stream, &agg, pinned)?)),
                None => (Some(upload_matrix(gpu, stream, feats, pinned)?), None),
            };
            let ready = gpu.record_event(stream);
            if !pinned {
                // Pageable copies are synchronous with the host too.
                *host_cursor = (*host_cursor).max(ready.time());
            }
            slots.push(Slot {
                global_idx,
                norm,
                features,
                cached_agg,
                adj: adj_dev,
                ready,
            });
        }
        Ok(BaselineExecutor {
            slots,
            kernel: opts.kernel,
            reuse,
            compute,
        })
    }

    /// Release the frame's device-resident adjacency (feature buffers move
    /// into the tape and are freed with it).
    pub fn finish(self, gpu: &mut Gpu) {
        for slot in self.slots {
            if let Some(a) = slot.adj {
                a.free(gpu);
            }
            // Unconsumed feature/cached buffers (e.g. a model that never
            // called aggregate_inputs) are freed here too.
            if let Some(f) = slot.features {
                f.release(gpu);
            }
            if let Some(c) = slot.cached_agg {
                c.release(gpu);
            }
        }
    }
}

impl GnnExecutor for BaselineExecutor<'_> {
    fn frame_len(&self) -> usize {
        self.slots.len()
    }

    fn adjacency(&self, slot: usize) -> Option<Rc<Csr>> {
        Some(Rc::clone(&self.slots[slot].norm.adj_hat))
    }

    fn inputs(&mut self, gpu: &mut Gpu, tape: &mut Tape) -> Result<Vec<Var>, OomError> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            gpu.wait_event(self.compute, slot.ready);
            let f = slot
                .features
                .take()
                .expect("raw features requested twice or replaced by reuse");
            out.push(tape.input(f));
        }
        Ok(out)
    }

    fn aggregate_inputs(&mut self, gpu: &mut Gpu, tape: &mut Tape) -> Result<Vec<Var>, OomError> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &mut self.slots {
            gpu.wait_event(self.compute, slot.ready);
            if let Some(cached) = slot.cached_agg.take() {
                // Reuse hit: the aggregation result arrived over PCIe; no
                // aggregation kernel runs at all.
                out.push(tape.input(cached));
                continue;
            }
            let f = slot.features.take().expect("features already consumed");
            let x = tape.input(f);
            let agg = tape.spmm(gpu, Rc::clone(&slot.norm.adj_hat), x, self.kernel)?;
            let normed = tape.row_scale(gpu, agg, Rc::clone(&slot.norm.inv_deg))?;
            if let Some(cache) = self.reuse.as_mut() {
                if !cache.contains(slot.global_idx) {
                    cache.insert(slot.global_idx, tape.host(normed));
                }
            }
            out.push(normed);
        }
        Ok(out)
    }

    fn aggregate_hidden(
        &mut self,
        gpu: &mut Gpu,
        tape: &mut Tape,
        xs: &[Var],
    ) -> Result<Vec<Var>, OomError> {
        assert_eq!(xs.len(), self.slots.len());
        let _ = KernelCategory::Aggregation;
        xs.iter()
            .zip(&self.slots)
            .map(|(&x, slot)| {
                assert!(
                    slot.adj.is_some(),
                    "hidden aggregation requires resident adjacency"
                );
                gpu.wait_event(self.compute, slot.ready);
                let agg = tape.spmm(gpu, Rc::clone(&slot.norm.adj_hat), x, self.kernel)?;
                tape.row_scale(gpu, agg, Rc::clone(&slot.norm.inv_deg))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipad_gpu_sim::DeviceConfig;
    use pipad_tensor::{seeded_rng, uniform};

    fn frame_data(n: usize, t: usize, d: usize) -> Vec<(Csr, Matrix)> {
        let mut rng = seeded_rng(1);
        (0..t)
            .map(|_| {
                (
                    Csr::from_edges(n, n, &[(0, 1), (1, 0), (1, 2), (2, 1)]),
                    uniform(&mut rng, n, d, 1.0),
                )
            })
            .collect()
    }

    fn opts(kernel: AggregationKernel) -> StageOptions {
        StageOptions {
            async_transfer: true,
            with_csc: false,
            kernel,
            needs_adjacency_when_cached: true,
        }
    }

    #[test]
    fn staged_aggregation_matches_reference() {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let compute = gpu.default_stream();
        let copy = gpu.create_stream();
        let data = frame_data(5, 2, 3);
        let frame: Vec<(usize, &Csr, &Matrix)> = data
            .iter()
            .enumerate()
            .map(|(i, (a, f))| (i, a, f))
            .collect();
        let mut host = SimNanos::ZERO;
        let mut exec = BaselineExecutor::stage(
            &mut gpu,
            &frame,
            opts(AggregationKernel::CooScatter),
            None,
            compute,
            copy,
            &mut host,
        )
        .unwrap();
        let mut tape = Tape::new(compute);
        let aggs = exec.aggregate_inputs(&mut gpu, &mut tape).unwrap();
        // reference: normalized mean aggregation
        let norm = normalize_snapshot(&data[0].0);
        let mut expect = norm.adj_hat.spmm_dense(&data[0].1);
        for r in 0..expect.rows() {
            let f = norm.inv_deg[r];
            for v in expect.row_mut(r) {
                *v *= f;
            }
        }
        assert!(tape.host(aggs[0]).approx_eq(&expect, 1e-5));
        tape.finish(&mut gpu);
        exec.finish(&mut gpu);
        assert_eq!(gpu.mem().in_use(), 0);
    }

    #[test]
    fn reuse_cache_removes_aggregation_kernels() {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let compute = gpu.default_stream();
        let copy = gpu.create_stream();
        let data = frame_data(5, 2, 3);
        let frame: Vec<(usize, &Csr, &Matrix)> = data
            .iter()
            .enumerate()
            .map(|(i, (a, f))| (i, a, f))
            .collect();
        let mut cache = ReuseCache::new();
        let mut host = SimNanos::ZERO;

        // pass 1: populate
        let mut exec = BaselineExecutor::stage(
            &mut gpu,
            &frame,
            opts(AggregationKernel::CooScatter),
            Some(&mut cache),
            compute,
            copy,
            &mut host,
        )
        .unwrap();
        let mut tape = Tape::new(compute);
        let first = exec.aggregate_inputs(&mut gpu, &mut tape).unwrap();
        let first_val = tape.host(first[1]);
        tape.finish(&mut gpu);
        exec.finish(&mut gpu);
        assert_eq!(cache.len(), 2);

        // pass 2: hits — no spmm launches, same values
        let snap = gpu.profiler().snapshot();
        let mut exec = BaselineExecutor::stage(
            &mut gpu,
            &frame,
            opts(AggregationKernel::CooScatter),
            Some(&mut cache),
            compute,
            copy,
            &mut host,
        )
        .unwrap();
        let mut tape = Tape::new(compute);
        let second = exec.aggregate_inputs(&mut gpu, &mut tape).unwrap();
        assert!(tape.host(second[1]).approx_eq(&first_val, 1e-6));
        let launches = gpu.profiler().samples()[snap.from..]
            .iter()
            .filter(|s| s.name.starts_with("spmm"))
            .count();
        assert_eq!(launches, 0, "cache hits must skip aggregation");
        tape.finish(&mut gpu);
        exec.finish(&mut gpu);
    }

    #[test]
    fn reuse_without_hidden_need_skips_adjacency_transfer() {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let compute = gpu.default_stream();
        let copy = gpu.create_stream();
        let data = frame_data(5, 2, 3);
        let frame: Vec<(usize, &Csr, &Matrix)> = data
            .iter()
            .enumerate()
            .map(|(i, (a, f))| (i, a, f))
            .collect();
        let mut cache = ReuseCache::new();
        for (i, (a, f)) in data.iter().enumerate() {
            let norm = normalize_snapshot(a);
            let _ = (norm, f);
            cache.insert(i, Matrix::zeros(5, 3));
        }
        let mut host = SimNanos::ZERO;
        let o = StageOptions {
            needs_adjacency_when_cached: false, // T-GCN-style
            ..opts(AggregationKernel::CooScatter)
        };
        let snap = gpu.profiler().snapshot();
        let exec = BaselineExecutor::stage(
            &mut gpu,
            &frame,
            o,
            Some(&mut cache),
            compute,
            copy,
            &mut host,
        )
        .unwrap();
        let w = gpu.profiler().window(snap);
        // only the cached aggregation matrices crossed PCIe (5×3 f32 each)
        assert_eq!(w.h2d_bytes, 2 * 60);
        exec.finish(&mut gpu);
    }

    #[test]
    fn sync_variant_blocks_host_on_transfers() {
        let data = frame_data(5, 2, 3);
        let frame: Vec<(usize, &Csr, &Matrix)> = data
            .iter()
            .enumerate()
            .map(|(i, (a, f))| (i, a, f))
            .collect();

        let run = |async_transfer: bool| -> (SimNanos, SimNanos) {
            let mut gpu = Gpu::new(DeviceConfig::v100());
            let compute = gpu.default_stream();
            let copy = gpu.create_stream();
            let mut host = SimNanos::ZERO;
            let o = StageOptions {
                async_transfer,
                ..opts(AggregationKernel::CooScatter)
            };
            let exec = BaselineExecutor::stage(&mut gpu, &frame, o, None, compute, copy, &mut host)
                .unwrap();
            exec.finish(&mut gpu);
            (host, gpu.now())
        };
        let (host_sync, _) = run(false);
        let (host_async, _) = run(true);
        assert!(host_sync > host_async, "pageable copies block the host");
    }
}
