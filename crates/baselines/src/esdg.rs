//! An ESDG-style graph-difference trainer (Chakaravarthy et al., SC'21),
//! the transfer-focused comparator the paper discusses in §2.2/§3.1:
//! topology stays resident on the device and only *edge deltas* cross PCIe
//! as the timeline advances — but computation still follows the
//! one-snapshot-at-a-time paradigm with no aggregation reuse or
//! intra-frame parallelism ("still follows the one-snapshot-at-a-time
//! training manner", §3.1).
//!
//! The comparison this enables: diff transfer attacks the same redundancy
//! as PiPAD's overlap-aware organization on the wire, yet leaves the
//! parallelism/reuse acceleration on the table — exactly the paper's
//! argument for why ESDG "blunders away the chance of fulfilling further
//! acceleration".

use pipad_autograd::{AggregationKernel, Tape, Var};
use pipad_dyngraph::{DynamicGraph, FrameIter};
use pipad_gpu_sim::{ArgValue, Event, Gpu, Lane, OomError, SimNanos, StreamId, TraceKind};
use pipad_kernels::{DeviceCsr, DeviceMatrix};
use pipad_models::{
    build_model, normalize_snapshot, EpochReport, GnnExecutor, HostAllocStats, ModelKind,
    NormalizedAdj, TrainReport, TrainingConfig,
};
use pipad_sparse::graph_diff;
use std::collections::HashMap;
use std::rc::Rc;

/// A snapshot resident on the device (adjacency + features), kept across
/// frames while it remains inside the sliding window.
struct ResidentSnapshot {
    norm: NormalizedAdj,
    adj: DeviceCsr,
    features_host: pipad_tensor::Matrix,
    ready: Event,
}

/// Device-resident window state maintained across frames.
struct ResidentWindow {
    snapshots: HashMap<usize, ResidentSnapshot>,
}

impl ResidentWindow {
    fn new() -> Self {
        ResidentWindow {
            snapshots: HashMap::new(),
        }
    }

    /// Make snapshot `idx` resident. The first snapshot of a run ships its
    /// full topology; later ones ship the delta against the latest resident
    /// predecessor (the device applies it in place — modeled as a fresh
    /// allocation of the same size plus the delta's PCIe bytes).
    fn admit(
        &mut self,
        gpu: &mut Gpu,
        copy: StreamId,
        graph: &DynamicGraph,
        idx: usize,
        host_cursor: &mut SimNanos,
    ) -> Result<(), OomError> {
        if self.snapshots.contains_key(&idx) {
            return Ok(());
        }
        let snap = &graph.snapshots[idx];
        let norm = normalize_snapshot(&snap.adj);
        // Delta against the nearest resident predecessor, if any.
        let predecessor = (0..idx).rev().find(|i| self.snapshots.contains_key(i));
        let wire_bytes = match predecessor {
            Some(p) => {
                let (added, removed) = graph_diff(&graph.snapshots[p].adj, &snap.adj);
                // each delta edge ships as (src, dst) plus an op tag word
                (added.len() + removed.len()) as u64 * 12
            }
            None => norm.adj_hat.bytes(),
        };
        let prep = SimNanos::from_nanos(gpu.cfg().host_op_fixed_ns)
            + SimNanos::from_bytes(
                wire_bytes + snap.features.bytes(),
                gpu.cfg().host_bytes_per_us,
            );
        let (_, host_end) = gpu.host_op("esdg_diff_prep", *host_cursor, prep);
        *host_cursor = host_end;
        gpu.stream_wait_host(copy, host_end);

        let adj = DeviceCsr::alloc(gpu, Rc::clone(&norm.adj_hat), false)?;
        gpu.h2d(copy, wire_bytes, true);
        gpu.h2d(copy, snap.features.bytes(), true);
        let ready = gpu.record_event(copy);
        self.snapshots.insert(
            idx,
            ResidentSnapshot {
                norm,
                adj,
                features_host: snap.features.clone(),
                ready,
            },
        );
        Ok(())
    }

    /// Drop snapshots that left the window.
    fn retire_below(&mut self, gpu: &mut Gpu, min_idx: usize) {
        let stale: Vec<usize> = self
            .snapshots
            .keys()
            .copied()
            .filter(|&k| k < min_idx)
            .collect();
        for k in stale {
            let s = self.snapshots.remove(&k).unwrap();
            s.adj.free(gpu);
        }
    }

    fn clear(&mut self, gpu: &mut Gpu) {
        for (_, s) in self.snapshots.drain() {
            s.adj.free(gpu);
        }
    }
}

/// One-snapshot executor over the resident window.
struct EsdgExecutor<'w> {
    window: &'w ResidentWindow,
    frame_start: usize,
    frame_len: usize,
    compute: StreamId,
}

impl GnnExecutor for EsdgExecutor<'_> {
    fn frame_len(&self) -> usize {
        self.frame_len
    }

    fn inputs(&mut self, gpu: &mut Gpu, tape: &mut Tape) -> Result<Vec<Var>, OomError> {
        (0..self.frame_len)
            .map(|i| {
                let s = &self.window.snapshots[&(self.frame_start + i)];
                gpu.wait_event(self.compute, s.ready);
                // features are resident: wrap without charging a transfer
                let dm = DeviceMatrix::alloc(gpu, s.features_host.clone_in())?;
                Ok(tape.input(dm))
            })
            .collect()
    }

    fn aggregate_inputs(&mut self, gpu: &mut Gpu, tape: &mut Tape) -> Result<Vec<Var>, OomError> {
        let xs = self.inputs(gpu, tape)?;
        self.aggregate_hidden(gpu, tape, &xs)
    }

    fn aggregate_hidden(
        &mut self,
        gpu: &mut Gpu,
        tape: &mut Tape,
        xs: &[Var],
    ) -> Result<Vec<Var>, OomError> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| {
                let s = &self.window.snapshots[&(self.frame_start + i)];
                gpu.wait_event(self.compute, s.ready);
                let agg = tape.spmm(
                    gpu,
                    Rc::clone(&s.norm.adj_hat),
                    x,
                    AggregationKernel::CooScatter,
                )?;
                tape.row_scale(gpu, agg, Rc::clone(&s.norm.inv_deg))
            })
            .collect()
    }
}

/// Train with ESDG-style difference transfers (single simulated GPU).
pub fn train_esdg(
    gpu: &mut Gpu,
    model_kind: ModelKind,
    graph: &DynamicGraph,
    hidden: usize,
    cfg: &TrainingConfig,
) -> Result<TrainReport, OomError> {
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    let model = build_model(gpu, model_kind, graph.feature_dim(), hidden, cfg.seed)?;
    let mut window = ResidentWindow::new();
    let mut host_cursor = SimNanos::ZERO;
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let run_t0 = gpu.synchronize();
    let mut steady_t0 = SimNanos::ZERO;
    let mut steady_snap = None;
    let preparing = cfg.preparing_epochs.min(cfg.epochs - 1);

    for epoch in 0..cfg.epochs {
        let t0 = gpu.synchronize().max(host_cursor);
        let alloc0 = HostAllocStats::capture();
        if epoch == preparing {
            steady_snap = Some(gpu.profiler().snapshot());
            steady_t0 = t0;
        }
        let mut losses = Vec::new();
        for frame in FrameIter::new(graph, cfg.window) {
            for i in 0..frame.len() {
                window.admit(gpu, copy, graph, frame.global_index(i), &mut host_cursor)?;
            }
            let mut exec = EsdgExecutor {
                window: &window,
                frame_start: frame.start,
                frame_len: frame.len(),
                compute,
            };
            let mut tape = Tape::new(compute);
            let out = model.forward_frame(gpu, &mut tape, &mut exec)?;
            let target = graph.target_for(frame.last_index());
            losses.push(tape.mse_loss(gpu, out.pred, target));
            tape.backward_mse(gpu, out.pred, target)?;
            out.binder.apply_sgd(gpu, compute, &tape, cfg.lr);
            tape.finish(gpu);
            window.retire_below(gpu, frame.start + 1);
        }
        // epoch boundary: the window restarts at snapshot 0, so the resident
        // set is rebuilt (the first admit of the next epoch ships a full
        // topology again, then deltas).
        window.clear(gpu);
        let t1 = gpu.synchronize().max(host_cursor);
        let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        let epoch_peak = gpu.mem().peak();
        // Same epoch-span schema as the PiPAD trainer, so the pipeline
        // analyzer (pipad-metrics) can window ESDG runs identically.
        gpu.trace_mut().span(
            "epoch",
            TraceKind::Span,
            Lane::Control,
            t0,
            t1,
            vec![
                ("epoch", ArgValue::U64(epoch as u64)),
                ("preparing", ArgValue::Bool(epoch < preparing)),
                ("mean_loss", ArgValue::F64(mean_loss as f64)),
                ("sim_time_ns", ArgValue::U64((t1 - t0).as_nanos())),
                ("peak_mem", ArgValue::U64(epoch_peak)),
            ],
        );
        epochs.push(EpochReport {
            epoch,
            mean_loss,
            sim_time: t1 - t0,
            alloc: HostAllocStats::capture().since(&alloc0),
        });
    }
    window.clear(gpu);
    let run_t1 = gpu.synchronize().max(host_cursor);
    let steady_snap = steady_snap.unwrap_or_else(|| gpu.profiler().snapshot());
    let steady = gpu.profiler().window(steady_snap);
    let steady_epochs = (cfg.epochs - preparing).max(1);
    Ok(TrainReport {
        trainer: "ESDG-diff".to_string(),
        model: model_kind,
        dataset: graph.name.clone(),
        epochs,
        total_time: run_t1 - run_t0,
        steady_epoch_time: SimNanos::from_nanos(
            (run_t1 - steady_t0).as_nanos() / steady_epochs as u64,
        ),
        steady,
        peak_mem: gpu.mem().peak(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_baseline, BaselineKind};
    use pipad_dyngraph::{DatasetId, Scale};
    use pipad_gpu_sim::DeviceConfig;

    fn setup() -> (DynamicGraph, TrainingConfig) {
        (
            DatasetId::Covid19England.gen_config(Scale::Tiny).generate(),
            TrainingConfig {
                window: 8,
                epochs: 3,
                preparing_epochs: 1,
                lr: 0.01,
                seed: 3,
            },
        )
    }

    #[test]
    fn diff_transfer_ships_far_fewer_bytes_than_pygt_a() {
        let (g, cfg) = setup();
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let full = train_baseline(
            &mut g1,
            BaselineKind::PygtA,
            ModelKind::EvolveGcn,
            &g,
            8,
            &cfg,
        )
        .unwrap();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let diff = train_esdg(&mut g2, ModelKind::EvolveGcn, &g, 8, &cfg).unwrap();
        assert!(
            diff.steady.h2d_bytes * 2 < full.steady.h2d_bytes,
            "diff {} vs full {}",
            diff.steady.h2d_bytes,
            full.steady.h2d_bytes
        );
    }

    #[test]
    fn esdg_matches_baseline_numerics() {
        let (g, cfg) = setup();
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let base = train_baseline(&mut g1, BaselineKind::PygtA, ModelKind::TGcn, &g, 8, &cfg)
            .unwrap()
            .losses();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let ours = train_esdg(&mut g2, ModelKind::TGcn, &g, 8, &cfg)
            .unwrap()
            .losses();
        for (a, b) in ours.iter().zip(&base) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn pipad_still_beats_diff_transfer() {
        // The paper's core argument vs ESDG: less wire traffic alone leaves
        // the parallelism/reuse acceleration on the table.
        let (g, cfg) = setup();
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let diff = train_esdg(&mut g1, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let ours = pipad::train_pipad(
            &mut g2,
            ModelKind::TGcn,
            &g,
            8,
            &cfg,
            &pipad::PipadConfig::default(),
        )
        .unwrap();
        assert!(
            ours.steady_epoch_time < diff.steady_epoch_time,
            "pipad {} vs esdg {}",
            ours.steady_epoch_time,
            diff.steady_epoch_time
        );
    }

    #[test]
    fn window_retires_and_releases_memory() {
        let (g, cfg) = setup();
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let before = gpu.mem().in_use();
        train_esdg(&mut gpu, ModelKind::TGcn, &g, 8, &cfg).unwrap();
        // only model parameters remain
        assert!(gpu.mem().in_use() > before);
        assert!(gpu.mem().live_buffers() < 30);
    }
}
