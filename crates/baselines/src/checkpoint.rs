//! Checkpoint assembly for the baseline trainers.
//!
//! The baselines carry far less state than PiPAD — no tuner, no GPU-side
//! reuse tier, no pipeline fallback flags — so their checkpoint is a
//! strict subset of the PiPAD layout, sharing section names and codecs
//! with `pipad::checkpoint` via [`pipad_ckpt`]:
//!
//! | section     | contents                                            |
//! |-------------|-----------------------------------------------------|
//! | `meta`      | run fingerprint, next epoch, steady-phase t0, cache stats |
//! | `clock`     | [`DeviceClock`] + host cursor                       |
//! | `params`    | named parameter matrices (raw f32 bits)             |
//! | `reuse_cpu` | CPU-side aggregation cache (PyGT-R / PyGT-G only)   |
//! | `faults`    | [`FaultStats`] observed so far (provenance)         |
//! | `epochs`    | per-epoch (index, loss bits, simulated time)        |
//! | `gen_config`| dataset generator provenance (optional)             |

use crate::reuse::ReuseCache;
use crate::trainer::BaselineKind;
use pipad_ckpt::codec::{
    get_device_clock, get_fault_stats, get_gen_config, get_matrix, put_device_clock,
    put_fault_stats, put_gen_config, put_matrix, put_str, put_u32, put_u64, Reader,
};
use pipad_ckpt::{Checkpoint, CheckpointWriter, CkptError, RunFingerprint};
use pipad_dyngraph::GenConfig;
use pipad_gpu_sim::{DeviceClock, FaultStats, SimNanos};
use pipad_models::{DgnnModel, EpochReport, ModelKind, TrainingConfig};

/// Fingerprint of a baseline run — the trainer field is the baseline's
/// own name, so a PyGT-R checkpoint will not restore into a PyGT-G run
/// even with identical hyper-parameters.
pub fn baseline_fingerprint(
    kind: BaselineKind,
    model: ModelKind,
    dataset: &str,
    hidden: usize,
    cfg: &TrainingConfig,
) -> RunFingerprint {
    RunFingerprint {
        trainer: kind.name().to_string(),
        model: model.name().to_string(),
        dataset: dataset.to_string(),
        hidden: hidden as u64,
        window: cfg.window as u64,
        epochs: cfg.epochs as u64,
        preparing: cfg.preparing_epochs as u64,
        lr_bits: cfg.lr.to_bits(),
        seed: cfg.seed,
    }
}

/// Borrowed view of a baseline trainer's state at an epoch boundary.
pub struct BaselineCkptInputs<'a> {
    /// Run identity.
    pub fingerprint: &'a RunFingerprint,
    /// First epoch a resumed run executes (the checkpointed epoch + 1).
    pub next_epoch: usize,
    /// Timestamp of the first steady epoch (zero while still preparing).
    pub steady_t0: SimNanos,
    /// Device timeline (cursors + op counters).
    pub clock: DeviceClock,
    /// Host-side staging cursor.
    pub host_cursor: SimNanos,
    /// The model whose parameters are saved.
    pub model: &'a dyn DgnnModel,
    /// Inter-frame reuse cache (`None` for PyGT / PyGT-A).
    pub reuse: Option<&'a ReuseCache>,
    /// Fault-injection statistics observed so far.
    pub fault_stats: FaultStats,
    /// Completed epochs.
    pub epochs_done: &'a [EpochReport],
    /// Dataset generator provenance.
    pub gen_config: Option<&'a GenConfig>,
}

/// Serialize a baseline trainer's state into a [`CheckpointWriter`].
pub fn encode_baseline_checkpoint(inputs: &BaselineCkptInputs<'_>) -> CheckpointWriter {
    let mut w = CheckpointWriter::new();

    let meta = w.section_sized("meta", 48 + inputs.fingerprint.encoded_len());
    inputs.fingerprint.put(meta);
    put_u64(meta, inputs.next_epoch as u64);
    put_u64(meta, inputs.steady_t0.as_nanos());
    put_u64(meta, inputs.reuse.map_or(0, |r| r.hits()));
    put_u64(meta, inputs.reuse.map_or(0, |r| r.misses()));

    let clock = w.section_sized("clock", 48 + 8 * inputs.clock.streams.len());
    put_device_clock(clock, &inputs.clock);
    put_u64(clock, inputs.host_cursor.as_nanos());

    let params = inputs.model.params();
    let cap: usize = 8 + params
        .iter()
        .map(|p| 4 + p.name.len() + 16 + p.value.borrow().bytes() as usize)
        .sum::<usize>();
    let s = w.section_sized("params", cap);
    put_u64(s, params.len() as u64);
    for p in &params {
        put_str(s, &p.name);
        let dm = p.value.borrow();
        put_matrix(s, dm.host());
    }

    if let Some(reuse) = inputs.reuse {
        let entries = reuse.entries_sorted();
        let cap: usize = 8 + entries
            .iter()
            .map(|(_, m)| 24 + m.bytes() as usize)
            .sum::<usize>();
        let s = w.section_sized("reuse_cpu", cap);
        put_u64(s, entries.len() as u64);
        for (snapshot, m) in entries {
            put_u64(s, snapshot as u64);
            put_matrix(s, m);
        }
    }

    let faults = w.section_sized("faults", 40);
    put_fault_stats(faults, &inputs.fault_stats);

    let s = w.section_sized("epochs", 8 + 20 * inputs.epochs_done.len());
    put_u64(s, inputs.epochs_done.len() as u64);
    for e in inputs.epochs_done {
        // HostAllocStats are deliberately NOT encoded — same thread-
        // invariance argument as the PiPAD trainer's checkpoint.
        put_u64(s, e.epoch as u64);
        put_u32(s, e.mean_loss.to_bits());
        put_u64(s, e.sim_time.as_nanos());
    }

    if let Some(g) = inputs.gen_config {
        let s = w.section_sized("gen_config", 80 + g.name.len());
        put_gen_config(s, g);
    }
    w
}

/// Baseline trainer state handed back by [`restore_baseline_checkpoint`].
pub struct BaselineRestoredState {
    /// First epoch to execute.
    pub next_epoch: usize,
    /// Timestamp of the first steady epoch.
    pub steady_t0: SimNanos,
    /// Device timeline to restore *after* the prologue finishes.
    pub clock: DeviceClock,
    /// Host cursor to restore together with the clock.
    pub host_cursor: SimNanos,
    /// Completed epochs (alloc counters zeroed — see encoding note).
    pub epochs_done: Vec<EpochReport>,
    /// Fault statistics at checkpoint time (provenance only).
    pub fault_stats: FaultStats,
    /// Dataset provenance, if the policy embedded one.
    pub gen_config: Option<GenConfig>,
}

/// Restore a baseline checkpoint into a freshly built model and (for the
/// reuse variants) an empty cache. Fails with a typed [`CkptError`] on
/// fingerprint, name or shape mismatch — never panics on foreign files.
pub fn restore_baseline_checkpoint(
    ckpt: &Checkpoint,
    expect: &RunFingerprint,
    model: &dyn DgnnModel,
    reuse: Option<&mut ReuseCache>,
) -> Result<BaselineRestoredState, CkptError> {
    let mut r = Reader::new(ckpt.require("meta")?);
    let fingerprint = RunFingerprint::get(&mut r)?;
    if &fingerprint != expect {
        return Err(CkptError::Malformed(
            "checkpoint fingerprint does not match this run",
        ));
    }
    let next_epoch = r.get_usize()?;
    let steady_t0 = SimNanos::from_nanos(r.get_u64()?);
    let reuse_hits = r.get_u64()?;
    let reuse_misses = r.get_u64()?;
    r.finish()?;

    let mut r = Reader::new(ckpt.require("clock")?);
    let clock = get_device_clock(&mut r)?;
    let host_cursor = SimNanos::from_nanos(r.get_u64()?);
    r.finish()?;

    let mut r = Reader::new(ckpt.require("params")?);
    let n = r.get_usize()?;
    let live = model.params();
    if n != live.len() {
        return Err(CkptError::Malformed("parameter count mismatch"));
    }
    for p in &live {
        let name = r.get_str()?;
        if name != p.name {
            return Err(CkptError::Malformed("parameter name mismatch"));
        }
        let m = get_matrix(&mut r)?;
        let mut dm = p.value.borrow_mut();
        if dm.host().shape() != m.shape() {
            m.recycle();
            return Err(CkptError::Malformed("parameter shape mismatch"));
        }
        dm.store(m);
    }
    r.finish()?;

    if let Some(cache) = reuse {
        let mut r = Reader::new(ckpt.require("reuse_cpu")?);
        let n = r.get_usize()?;
        for _ in 0..n {
            let snapshot = r.get_usize()?;
            cache.insert(snapshot, get_matrix(&mut r)?);
        }
        r.finish()?;
        cache.restore_counters(reuse_hits, reuse_misses);
    }

    let mut r = Reader::new(ckpt.require("faults")?);
    let fault_stats = get_fault_stats(&mut r)?;
    r.finish()?;

    let mut r = Reader::new(ckpt.require("epochs")?);
    let n = r.get_usize()?;
    let mut epochs_done = Vec::with_capacity(n);
    for _ in 0..n {
        epochs_done.push(EpochReport {
            epoch: r.get_usize()?,
            mean_loss: f32::from_bits(r.get_u32()?),
            sim_time: SimNanos::from_nanos(r.get_u64()?),
            alloc: Default::default(),
        });
    }
    r.finish()?;

    let gen_config = match ckpt.section("gen_config") {
        Some(b) => {
            let mut r = Reader::new(b);
            let g = get_gen_config(&mut r)?;
            r.finish()?;
            Some(g)
        }
        None => None,
    };

    Ok(BaselineRestoredState {
        next_epoch,
        steady_t0,
        clock,
        host_cursor,
        epochs_done,
        fault_stats,
        gen_config,
    })
}
