//! Minimal stand-in for `serde` so the workspace builds hermetically
//! (the build environment has no registry access). The workspace uses
//! serde only as `#[derive(Serialize, Deserialize)]` annotations on config
//! structs — nothing is actually serialized at runtime — so the traits are
//! empty markers and the derives (see `serde_derive`) expand to nothing.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
