//! Minimal, dependency-free stand-in for the subset of `criterion` this
//! workspace's benches use. The build environment is hermetic (no
//! registry access), so the real harness cannot be fetched.
//!
//! Semantics: each `b.iter(..)` target is warmed once and then timed over
//! `sample_size` iterations; mean wall-clock per iteration is printed to
//! stdout. When invoked by `cargo test` (cargo passes `--test` to bench
//! binaries), every target runs exactly one iteration so the suite stays
//! fast while still smoke-testing the bench code paths.

use std::fmt::Display;
use std::time::{Duration, Instant};

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    group: String,
    param: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            group: function_name.into(),
            param: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.group, self.param)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_target(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_target(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id);
        run_target(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (not timed) so one-time lazy init does not skew means.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_target<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let iters = if test_mode() { 1 } else { sample_size };
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    println!("bench {label}: {:.3} ms/iter ({iters} iters)", mean * 1e3);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
