//! Minimal, dependency-free stand-in for the subset of `proptest` used by
//! this workspace's property suites: the `proptest!` macro, `Strategy`
//! with `prop_map`/`prop_flat_map`, `Just`, tuple and range strategies,
//! `proptest::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Shrinking and persistence are intentionally absent: each test runs a
//! fixed number of cases drawn from a deterministic per-test RNG (seeded
//! from the test's name), so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A deterministic SplitMix64 stream seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Error carried out of a failing `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// A generator of values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // wrapping: a full-domain range (lo = MIN, hi = MAX) spans
                // 2^64, which the `span == 0` branch below handles.
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(u32, u64, usize, i32, i64);

macro_rules! float_strategy {
    ($($t:ty, $bits:expr),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, 24, f64, 53);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec` for `Range<usize>` sizes.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Mirror of the `proptest!` macro: runs each `#[test] fn name(pat in
/// strategy, ...) { body }` for `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(n: u32) -> impl Strategy<Value = (u32, Vec<u32>)> {
        (2..=n).prop_flat_map(move |k| (Just(k), crate::collection::vec(0..k, 0..10)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&y));
        }

        #[test]
        fn flat_map_respects_inner((k, xs) in pair(9)) {
            prop_assert!((2..=9).contains(&k));
            for x in xs {
                prop_assert!(x < k);
            }
        }

        #[test]
        fn eq_macro_works(a in 0u64..100) {
            prop_assert_eq!(a + 1, 1 + a);
            prop_assert_ne!(a, a + 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = 0u32..1000;
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        let a: Vec<u32> = (0..16).map(|_| s.generate(&mut r1)).collect();
        let b: Vec<u32> = (0..16).map(|_| s.generate(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
