//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! this workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer and float ranges.
//!
//! The build environment is hermetic (no registry access), so external
//! crates are vendored as small API-compatible stubs. The generator is a
//! SplitMix64 stream — statistically fine for test data and dataset
//! synthesis, deterministic per seed, and different seeds produce
//! different streams. It is NOT the same stream as upstream `rand`, and
//! it is not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Object-safe core: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // full-width inclusive range
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty, $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let unit =
                    (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit =
                    (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, 24, f64, 53);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed replacement for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so nearby seeds do not produce nearby first draws.
            let mut rng = StdRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xa: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let xb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let xc: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f: f32 = r.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let d: f64 = r.gen_range(0.0f64..5.0);
            assert!((0.0..5.0).contains(&d));
        }
    }
}
