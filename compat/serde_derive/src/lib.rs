//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! hermetic in-tree serde stand-in. The workspace only uses serde derives
//! as documentation of intent (no (de)serialization happens at runtime),
//! so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
