//! Workspace facade crate: hosts the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. Re-exports the public crates so
//! examples can use a single dependency root.

pub use pipad;
pub use pipad_autograd as autograd;
pub use pipad_baselines as baselines;
pub use pipad_ckpt as ckpt;
pub use pipad_dyngraph as dyngraph;
pub use pipad_gpu_sim as gpu_sim;
pub use pipad_kernels as kernels;
pub use pipad_metrics as metrics;
pub use pipad_models as models;
pub use pipad_serve as serve;
pub use pipad_sparse as sparse;
pub use pipad_tensor as tensor;
