//! The GAT-RNN extension: attention-weighted dynamic GNN training — the
//! paper's §1 generalization claim made concrete ("with the SpMM-like
//! aggregation being the foundation of mainstream GNNs (e.g., Graph
//! Attention Network), our methodology thus can be applied to various
//! types of DGNNs").
//!
//! Attention coefficients depend on the current weights, so inter-frame
//! reuse and weight reuse do not apply; PiPAD still provides the
//! overlap-aware transfer and the pipeline, and the shared-index parallel
//! attention kernel (`spmm_sliced_parallel_values`) keeps the topology-
//! overlap win at the kernel level.
//!
//! ```text
//! cargo run --release --example attention_dgnn
//! ```

use pipad_repro::baselines::{train_baseline, BaselineKind};
use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn main() {
    let graph = DatasetId::HepTh.gen_config(Scale::Tiny).generate();
    println!(
        "HepTh analogue: {} vertices, {} snapshots, {}-dim features",
        graph.n(),
        graph.len(),
        graph.feature_dim()
    );
    let cfg = TrainingConfig {
        window: 8,
        epochs: 5,
        preparing_epochs: 2,
        lr: 0.02,
        seed: 13,
    };

    let mut gpu = Gpu::new(DeviceConfig::v100());
    let base = train_baseline(
        &mut gpu,
        BaselineKind::PygtA,
        ModelKind::GatRnn,
        &graph,
        16,
        &cfg,
    )
    .expect("baseline GAT training failed");

    let mut gpu = Gpu::new(DeviceConfig::v100());
    let ours = train_pipad(
        &mut gpu,
        ModelKind::GatRnn,
        &graph,
        16,
        &cfg,
        &PipadConfig {
            // attention defeats aggregation-result reuse; transfer +
            // pipeline benefits remain
            inter_frame_reuse: false,
            ..Default::default()
        },
    )
    .expect("PiPAD GAT training failed");

    println!("\nGAT-RNN under both frameworks (same numerics):");
    println!(
        "  PyGT-A : losses {:?}",
        base.losses()
            .iter()
            .map(|l| (l * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
    println!(
        "  PiPAD  : losses {:?}",
        ours.losses()
            .iter()
            .map(|l| (l * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
    println!(
        "\nsteady epoch: PyGT-A {} vs PiPAD {}  ({:.2}x)",
        base.steady_epoch_time,
        ours.steady_epoch_time,
        ours.speedup_over(&base)
    );
    println!(
        "H2D per steady epoch: {:.0} KiB vs {:.0} KiB",
        base.steady.h2d_bytes as f64 / 1024.0 / 3.0,
        ours.steady.h2d_bytes as f64 / 1024.0 / 3.0
    );
}
