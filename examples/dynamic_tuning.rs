//! Inside the dynamic tuner: how PiPAD picks the snapshots-per-partition
//! setting (`S_per`) from memory headroom, measured overlap rates and the
//! offline parallel-GNN table — and what happens when the device shrinks.
//!
//! ```text
//! cargo run --release --example dynamic_tuning
//! ```

use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu, SimNanos};
use pipad_repro::pipad::{
    DynamicTuner, FrameProfile, GraphAnalyzer, OfflineTable, PartitionCatalog,
};

fn main() {
    let graph = DatasetId::Epinions.gen_config(Scale::Tiny).generate();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let mut host = SimNanos::ZERO;

    // The preparing-epoch machinery: slice every snapshot, extract the
    // overlap splits for every candidate partition.
    let analyzer = GraphAnalyzer::run(&mut gpu, &graph, &mut host);
    let catalog = PartitionCatalog::build(&mut gpu, &analyzer, &mut host);
    println!(
        "analyzed {} snapshots; catalog holds {} partition plans",
        analyzer.len(),
        catalog.len()
    );
    for s_per in [2usize, 4, 8] {
        println!(
            "  S_per={s_per}: mean overlap rate {:.2}",
            catalog.mean_overlap_rate(s_per)
        );
    }

    // A frame profile as the preparing epochs would have measured it.
    let profile = FrameProfile {
        peak_mem_one_snapshot: 8 << 20, // 8 MiB per one-snapshot frame
        compute_time: SimNanos::from_micros(4_000),
        transfer_bytes: 2 << 20,
    };

    println!("\ndevice capacity  ->  tuner decision (frame 0, window 8)");
    for capacity in [256u64 << 20, 64 << 20, 24 << 20, 12 << 20] {
        let tuner = DynamicTuner::new(OfflineTable::default(), capacity, 12_000, 2);
        let d = tuner.decide(&profile, &catalog, 0, 8);
        println!(
            "  {:>4} MiB        ->  S_per={} (est. speedup {:.2}x, memory bound U={}{})",
            capacity >> 20,
            d.s_per,
            d.estimated_speedup,
            d.memory_bound,
            if d.rejected_for_stall.is_empty() {
                String::new()
            } else {
                format!(", stall-rejected: {:?}", d.rejected_for_stall)
            }
        );
    }

    // A slow link forces the stall-rejection path.
    println!("\nwith a 10x slower PCIe link:");
    let tuner = DynamicTuner::new(OfflineTable::default(), 256 << 20, 1_200, 2);
    let d = tuner.decide(&profile, &catalog, 0, 8);
    println!(
        "  S_per={} chosen; options rejected for pipeline stall: {:?}",
        d.s_per, d.rejected_for_stall
    );
}
