//! Quickstart: train a dynamic GNN with PiPAD on a synthetic dynamic graph
//! and compare against the PyGT baseline — the 60-second tour of the API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pipad_repro::baselines::{train_baseline, BaselineKind};
use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn main() {
    // 1. A dynamic graph: 20 snapshots of an evolving contact network
    //    (a synthetic analogue of the paper's Covid19-England dataset).
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    println!(
        "dataset: {} — {} vertices, {} snapshots, {} features/vertex, adjacent overlap {:.0}%",
        graph.name,
        graph.n(),
        graph.len(),
        graph.feature_dim(),
        graph.mean_adjacent_overlap() * 100.0
    );

    // 2. Training configuration: sliding window of 8 snapshots, 2 preparing
    //    epochs (profiling + graph slicing) and 2 steady-state epochs.
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let hidden = 16;

    // 3. Train T-GCN with the PyGT baseline (one snapshot at a time) ...
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let base = train_baseline(
        &mut gpu,
        BaselineKind::Pygt,
        ModelKind::TGcn,
        &graph,
        hidden,
        &cfg,
    )
    .expect("baseline training failed");

    // 4. ... and with PiPAD (partition-parallel, pipelined, with reuse).
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let ours = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        hidden,
        &cfg,
        &PipadConfig::default(),
    )
    .expect("PiPAD training failed");

    // 5. Same numerics, less simulated time.
    println!("\n              loss curve                      steady epoch");
    println!(
        "PyGT   {:>8.5} -> {:>8.5}            {}",
        base.losses()[0],
        base.losses().last().unwrap(),
        base.steady_epoch_time
    );
    println!(
        "PiPAD  {:>8.5} -> {:>8.5}            {}",
        ours.losses()[0],
        ours.losses().last().unwrap(),
        ours.steady_epoch_time
    );
    println!(
        "\nend-to-end speedup (steady state): {:.2}x",
        ours.speedup_over(&base)
    );
    println!(
        "transfer volume per steady epoch: PyGT {:.1} KiB vs PiPAD {:.1} KiB",
        base.steady.h2d_bytes as f64 / 1024.0 / 2.0,
        ours.steady.h2d_bytes as f64 / 1024.0 / 2.0,
    );
}
