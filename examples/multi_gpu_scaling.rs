//! Multi-GPU scaling of dynamic GNN training — the paper's §4.5
//! future-work extension made runnable: vertex-partitioned data-parallel
//! training over 1–4 simulated V100s with halo exchange and
//! ring-allreduce over an NVLink-class P2P link.
//!
//! T-GCN aggregates only input features, so inter-frame reuse silences
//! its steady-state halo entirely; MPNN-LSTM aggregates hidden
//! activations too, so its halo exchange (forward gather + backward
//! gradient scatter) recurs every epoch. Both scale, and both reproduce
//! the single-GPU loss trajectory bit for bit.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::models::{ModelKind, TrainingConfig};
use pipad_repro::pipad::{train_data_parallel, MultiGpuConfig};

fn main() {
    let graph = DatasetId::Epinions.gen_config(Scale::Tiny).generate();
    println!(
        "Epinions analogue: {} vertices, {} snapshots — vertex-partitioned\n",
        graph.n(),
        graph.len()
    );
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 1,
        lr: 0.02,
        seed: 5,
    };

    for model in [ModelKind::TGcn, ModelKind::MpnnLstm] {
        println!("{}:", model.name());
        println!("gpus   steady epoch   scaling   halo/epoch   allreduce/epoch   max device mem");
        let mut base = None;
        let mut loss_bits = None;
        for n_gpus in [1usize, 2, 4] {
            let r = train_data_parallel(
                model,
                &graph,
                16,
                &cfg,
                &MultiGpuConfig {
                    n_gpus,
                    ..Default::default()
                },
            )
            .expect("multi-gpu run failed");
            let final_bits = r.epochs.last().expect("epochs").mean_loss.to_bits();
            match loss_bits {
                None => loss_bits = Some(final_bits),
                Some(bits) => assert_eq!(
                    bits, final_bits,
                    "{model:?}: n_gpus={n_gpus} diverged from single-GPU"
                ),
            }
            let t = r.steady_epoch_time;
            let scaling = base.get_or_insert(t).as_nanos() as f64 / t.as_nanos().max(1) as f64;
            println!(
                "{:>4}   {:>12}   {:>6.2}x   {:>8.1} KiB   {:>13.1} KiB   {:>10.1} KiB",
                r.n_gpus,
                t.to_string(),
                scaling,
                r.halo_bytes_per_epoch as f64 / 1024.0,
                r.allreduce_bytes_per_epoch as f64 / 1024.0,
                *r.per_device_peak.iter().max().unwrap() as f64 / 1024.0,
            );
        }
        println!("     final loss bit-identical across device counts\n");
    }
    println!(
        "Loss trajectories are identical across device counts (canonical\n\
         virtual-shard reductions reconstruct the exact single-GPU\n\
         gradient) — see tests/multigpu_equivalence.rs."
    );
}
