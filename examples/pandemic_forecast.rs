//! Pandemic forecasting with MPNN-LSTM — the application the MPNN-LSTM
//! paper (Panagopoulos et al., AAAI'21) was built for and one of the
//! PiPAD paper's evaluation workloads: predict the next-day infection
//! signal of English regions from a mobility contact graph that changes
//! daily.
//!
//! ```text
//! cargo run --release --example pandemic_forecast
//! ```

use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn main() {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    println!(
        "Covid19-England analogue: {} regions, {} daily snapshots, {}-dim signals",
        graph.n(),
        graph.len(),
        graph.feature_dim()
    );

    let cfg = TrainingConfig {
        window: 8,
        epochs: 8,
        preparing_epochs: 2,
        lr: 0.02,
        seed: 11,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let report = train_pipad(
        &mut gpu,
        ModelKind::MpnnLstm,
        &graph,
        32, // hidden dim per §5.1 for small-scale datasets
        &cfg,
        &PipadConfig::default(),
    )
    .expect("training failed");

    println!("\nepoch   mean MSE      sim time");
    for e in &report.epochs {
        let phase = if e.epoch < cfg.preparing_epochs {
            "(preparing)"
        } else {
            ""
        };
        println!(
            "{:>5}   {:>9.6}   {:>11} {}",
            e.epoch,
            e.mean_loss,
            e.sim_time.to_string(),
            phase
        );
    }
    let first = report.losses()[cfg.preparing_epochs];
    let last = *report.losses().last().unwrap();
    println!(
        "\nforecast error improved {:.1}% over the steady epochs",
        (1.0 - last / first) * 100.0
    );
    println!(
        "steady-state breakdown: compute {}, PCIe {}, {} kernel launches/epoch",
        report.steady.compute_total,
        report.steady.transfer_time(),
        report.steady.kernel_launches / (cfg.epochs - cfg.preparing_epochs) as u64
    );
    println!(
        "aggregation share of compute: {:.0}%  (inter-frame reuse removed the rest)",
        report
            .steady
            .compute_by_category
            .get("aggregation")
            .map(|t| 100.0 * t.as_nanos() as f64
                / report.steady.compute_total.as_nanos().max(1) as f64)
            .unwrap_or(0.0)
    );
}
