//! Traffic forecasting with T-GCN on the PEMS08 analogue — the workload
//! T-GCN (Zhao et al.) targets: predict sensor readings on a road network
//! whose link conditions evolve over time.
//!
//! Demonstrates the incremental-comparison story of the paper's §5.1: each
//! system adds one mechanism, and on T-GCN the inter-frame reuse is the
//! decisive one (it removes *all* aggregation — §5.2).
//!
//! ```text
//! cargo run --release --example traffic_forecast
//! ```

use pipad_repro::baselines::{train_baseline, BaselineKind};
use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainReport, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn main() {
    let graph = DatasetId::Pems08.gen_config(Scale::Tiny).generate();
    println!(
        "PEMS08 analogue: {} sensors, {} snapshots, {}-dim readings\n",
        graph.n(),
        graph.len(),
        graph.feature_dim()
    );
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.02,
        seed: 5,
    };
    let hidden = 32;

    let mut reports: Vec<TrainReport> = Vec::new();
    for kind in BaselineKind::ALL {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        reports.push(
            train_baseline(&mut gpu, kind, ModelKind::TGcn, &graph, hidden, &cfg)
                .expect("baseline failed"),
        );
    }
    let mut gpu = Gpu::new(DeviceConfig::v100());
    reports.push(
        train_pipad(
            &mut gpu,
            ModelKind::TGcn,
            &graph,
            hidden,
            &cfg,
            &PipadConfig::default(),
        )
        .expect("pipad failed"),
    );

    let base_time = reports[0].steady_epoch_time;
    println!("system    steady epoch     speedup   H2D/epoch     aggregation kernels");
    for r in &reports {
        let agg = r
            .steady
            .compute_by_category
            .get("aggregation")
            .map(|t| t.to_string())
            .unwrap_or_else(|| "none".to_string());
        println!(
            "{:<9} {:>12}   {:>6.2}x   {:>8.1} KiB   {}",
            r.trainer,
            r.steady_epoch_time.to_string(),
            base_time.as_nanos() as f64 / r.steady_epoch_time.as_nanos().max(1) as f64,
            r.steady.h2d_bytes as f64 / 1024.0 / 2.0,
            agg,
        );
    }
    println!(
        "\nNote how PyGT-R already eliminates T-GCN's aggregation entirely (all of it is\n\
         over raw inputs, hence cacheable) and PiPAD adds the parallel update + pipeline\n\
         on top — the paper's explanation for this model's speedup profile (§5.2)."
    );
}
