//! Differential fault-equivalence: a fault plan whose every injected fault
//! is *fully recovered* must leave the training numerics untouched —
//! bit-identical per-epoch losses versus the fault-free run — for all
//! three paper models.
//!
//! Fault placement is probed, not guessed: a fault-free run and an
//! all-preparing prefix run give the deterministic op-counter space, and
//! the plan lands one recoverable fault of each numerics-neutral kind
//! (one-shot OOM, transient transfer failure, straggler window) at the
//! midpoint of the steady phase.

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, DynamicGraph, Scale};
use pipad_gpu_sim::{
    DeviceConfig, FaultPlan, FaultStats, Gpu, OpCounters, StragglerRange, TransferFault,
};
use pipad_models::{ModelKind, TrainingConfig};

const HIDDEN: usize = 16;

fn config(epochs: usize) -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    }
}

struct Obs {
    loss_bits: Vec<u32>,
    counters: OpCounters,
    stats: FaultStats,
    recovery_instants: usize,
    backoff_spans: usize,
}

fn observe(kind: ModelKind, graph: &DynamicGraph, epochs: usize, plan: Option<&FaultPlan>) -> Obs {
    let mut gpu = Gpu::new(DeviceConfig::v100());
    if let Some(p) = plan {
        gpu.install_faults(p.clone());
    }
    let report = train_pipad(
        &mut gpu,
        kind,
        graph,
        HIDDEN,
        &config(epochs),
        &PipadConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{kind:?}: run must complete, got {e}"));
    let mut recovery_instants = 0;
    let mut backoff_spans = 0;
    for e in gpu.trace().events() {
        match e.name {
            "recovery" => recovery_instants += 1,
            "transfer_backoff" => backoff_spans += 1,
            _ => {}
        }
    }
    Obs {
        loss_bits: report.losses().iter().map(|l| l.to_bits()).collect(),
        counters: gpu.op_counters(),
        stats: gpu.fault_stats(),
        recovery_instants,
        backoff_spans,
    }
}

#[test]
fn recovered_faults_leave_losses_bit_identical_for_all_models() {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    for kind in ModelKind::ALL {
        let free = observe(kind, &graph, 4, None);
        assert!(
            free.stats.total() == 0 && free.recovery_instants == 0,
            "{kind:?}: fault-free probe must be clean"
        );
        let prep = observe(kind, &graph, 2, None);

        // One numerics-neutral fault of each kind, mid-steady-phase:
        // - the one-shot OOM rolls the frame back and retries;
        // - the single transfer failure is absorbed by the copy layer's
        //   bounded retry (one backoff span, same payload re-sent);
        // - the straggler window only stretches simulated time.
        let plan = FaultPlan {
            oom_at_alloc: vec![(prep.counters.allocs + free.counters.allocs) / 2],
            transfer_faults: vec![TransferFault {
                op: (prep.counters.copy_ops + free.counters.copy_ops) / 2,
                failures: 1,
            }],
            straggler_ranges: vec![StragglerRange {
                from: (prep.counters.launches + free.counters.launches) / 2,
                to: (prep.counters.launches + free.counters.launches) / 2 + 64,
                multiplier_milli: 5_000,
            }],
            ..FaultPlan::default()
        };
        let faulted = observe(kind, &graph, 4, Some(&plan));

        assert!(
            faulted.stats.oom_injected >= 1,
            "{kind:?}: the planned OOM never fired ({:?})",
            faulted.stats
        );
        assert!(
            faulted.stats.transfer_injected >= 1,
            "{kind:?}: the planned transfer fault never fired ({:?})",
            faulted.stats
        );
        assert!(
            faulted.stats.straggler_injected >= 1,
            "{kind:?}: the planned straggler window never fired ({:?})",
            faulted.stats
        );
        assert!(
            faulted.recovery_instants >= 1,
            "{kind:?}: OOM recovery left no recovery instant in the trace"
        );
        assert!(
            faulted.backoff_spans >= 1,
            "{kind:?}: transfer retry left no transfer_backoff span in the trace"
        );
        assert_eq!(
            faulted.loss_bits, free.loss_bits,
            "{kind:?}: fully-recovered faults must not perturb the losses"
        );
    }
}
