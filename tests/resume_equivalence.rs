//! Kill-and-resume equivalence gate (the checkpoint subsystem's headline
//! contract).
//!
//! For every paper model, and with the host buffer pool both enabled and
//! disabled, a PiPAD run killed mid-steady-epoch by an injected `crash`
//! fault and resumed from its newest checkpoint must reproduce the
//! uninterrupted run **bit for bit**: identical loss bits for every epoch
//! and a byte-identical Chrome-trace export of the final steady epoch's
//! window. `scripts/check.sh` runs this binary under `PIPAD_THREADS=1`
//! and `=4`, completing the thread axis of the contract.

use pipad::{train_pipad, PipadConfig};
use pipad_repro::ckpt::CheckpointPolicy;
use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{
    export_chrome_trace_window, last_span_window, CrashCounter, CrashPoint, DeviceConfig,
    DeviceFault, FaultPlan, Gpu,
};
use pipad_repro::models::{ModelKind, TrainingConfig};
use pipad_repro::tensor::with_pool_enabled;
use std::path::Path;

fn cfg() -> TrainingConfig {
    // 2 preparing + 4 steady epochs → checkpoints at epochs 1, 3, 5; the
    // 70% crash lands mid-steady, past at least one steady checkpoint.
    TrainingConfig {
        window: 8,
        epochs: 6,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 3,
    }
}

fn assert_kill_and_resume_is_invisible(model: ModelKind, base: &Path) {
    let g = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = cfg();
    let sub = base.join(model.name());
    let _ = std::fs::remove_dir_all(&sub);
    let pcfg_for = |dir: &str| PipadConfig {
        checkpoint: Some(CheckpointPolicy::new(sub.join(dir), 2)),
        ..PipadConfig::default()
    };

    // Reference: never interrupted (checkpointing on, so both runs emit
    // identical checkpoint_write instants).
    let mut g1 = Gpu::new(DeviceConfig::v100());
    let reference = train_pipad(&mut g1, model, &g, 8, &cfg, &pcfg_for("ref"))
        .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", model.name()));
    let crash_at = g1.op_counters().launches * 7 / 10;

    // Killed: crash at ~70% of the reference's launch stream.
    let mut g2 = Gpu::new(DeviceConfig::v100());
    g2.install_faults(FaultPlan {
        crash: Some(CrashPoint {
            counter: CrashCounter::Launches,
            at: crash_at,
        }),
        ..FaultPlan::default()
    });
    let err = train_pipad(&mut g2, model, &g, 8, &cfg, &pcfg_for("killed"))
        .expect_err("crash fault must abort the run");
    assert!(matches!(err, DeviceFault::Crash(_)), "{err}");

    // Resumed: fresh device, restore from the killed run's checkpoint.
    let mut g3 = Gpu::new(DeviceConfig::v100());
    let resumed = train_pipad(&mut g3, model, &g, 8, &cfg, &pcfg_for("killed"))
        .unwrap_or_else(|e| panic!("{}: resumed run failed: {e}", model.name()));

    let a: Vec<u32> = reference.losses().iter().map(|l| l.to_bits()).collect();
    let b: Vec<u32> = resumed.losses().iter().map(|l| l.to_bits()).collect();
    assert_eq!(a, b, "{}: kill-and-resume changed the losses", model.name());

    let wa = last_span_window(g1.trace(), "epoch").unwrap();
    let wb = last_span_window(g3.trace(), "epoch").unwrap();
    assert_eq!(wa, wb, "{}: final epoch timeline drifted", model.name());
    let ea = export_chrome_trace_window(g1.trace(), 1, wa.0, wa.1);
    let eb = export_chrome_trace_window(g3.trace(), 1, wb.0, wb.1);
    assert_eq!(ea, eb, "{}: final epoch trace window differs", model.name());

    std::fs::remove_dir_all(&sub).expect("cleanup checkpoints");
}

#[test]
fn kill_and_resume_is_bit_identical_for_all_models_pool_on_and_off() {
    let base =
        std::env::temp_dir().join(format!("pipad-resume-equivalence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for model in [ModelKind::EvolveGcn, ModelKind::MpnnLstm, ModelKind::TGcn] {
        with_pool_enabled(true, || {
            assert_kill_and_resume_is_invisible(model, &base.join("pool"))
        });
        with_pool_enabled(false, || {
            assert_kill_and_resume_is_invisible(model, &base.join("nopool"))
        });
    }
    let _ = std::fs::remove_dir_all(&base);
}
