//! Differential serving-vs-training gate (the `pipad-serve` headline
//! contract).
//!
//! For every paper model, a checkpoint-restored serving engine must emit
//! logits that are **bit-identical** to the train-time forward for the
//! same frame with the same parameters — batched through the dynamic
//! micro-batcher or served one request at a time, with the host buffer
//! pool on or off. The reference forward is rebuilt here from the public
//! training machinery ([`GraphAnalyzer`], [`PartitionCatalog`],
//! [`PipadExecutor`], the model's own `forward_frame`) rather than
//! through `pipad-serve`, so the two sides cannot share a bug.
//! `scripts/check.sh` runs this binary under `PIPAD_THREADS=1` and `=4`,
//! completing the thread axis of the contract.
//!
//! A second gate pins checkpoint rotation: restoring an *older* rotated
//! checkpoint serves that epoch's exact parameter bits, not the newest
//! ones.

use pipad::exec::{ExecOptions, PipadExecutor};
use pipad::{
    restore_checkpoint, run_fingerprint, train_pipad, GraphAnalyzer, InterFrameReuse,
    PartitionCatalog, PipadConfig,
};
use pipad_autograd::Tape;
use pipad_ckpt::{latest_checkpoint, list_checkpoints, Checkpoint, CheckpointPolicy};
use pipad_dyngraph::{DatasetId, DynamicGraph, Scale};
use pipad_gpu_sim::{DeviceConfig, Gpu, SimNanos};
use pipad_models::{build_model, ModelKind, TrainingConfig};
use pipad_repro::serve::{
    serve_open_loop, BatchPolicy, EngineConfig, RequestGenConfig, RequestOutcome, ServeEngine,
    ServeReport, ServeSimConfig,
};
use pipad_tensor::{with_pool_enabled, Matrix};
use std::collections::BTreeMap;
use std::path::Path;

const HIDDEN: usize = 8;

fn graph() -> DynamicGraph {
    DatasetId::Covid19England.gen_config(Scale::Tiny).generate()
}

fn cfg(epochs: usize) -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 3,
    }
}

/// Train `model` with rotating checkpoints into `dir`.
fn train_into(dir: &Path, model: ModelKind, graph: &DynamicGraph, cfg: &TrainingConfig) {
    let _ = std::fs::remove_dir_all(dir);
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let pcfg = PipadConfig {
        checkpoint: Some(CheckpointPolicy::new(dir.to_path_buf(), 2)),
        ..PipadConfig::default()
    };
    train_pipad(&mut gpu, model, graph, HIDDEN, cfg, &pcfg)
        .unwrap_or_else(|e| panic!("{}: training leg failed: {e}", model.name()));
}

/// The train-path forward, rebuilt without `pipad-serve`: restore the
/// checkpoint at `path` onto a fresh device and run one frame through the
/// exact steady-epoch execution pipeline. Returns the host prediction
/// matrix (all nodes × output dim).
fn reference_forward(
    path: &Path,
    model: ModelKind,
    graph: &DynamicGraph,
    cfg: &TrainingConfig,
    frame_start: usize,
) -> Matrix {
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let ckpt = Checkpoint::read(path).expect("read checkpoint");
    let fp = run_fingerprint("PiPAD", model, &graph.name, HIDDEN, cfg);
    let m = build_model(&mut gpu, model, graph.feature_dim(), HIDDEN, cfg.seed)
        .expect("build reference model");
    let mut host_cursor = SimNanos::ZERO;
    let analyzer = GraphAnalyzer::run(&mut gpu, graph, &mut host_cursor);
    let catalog = PartitionCatalog::build(&mut gpu, &analyzer, &mut host_cursor);
    let mut reuse = InterFrameReuse::new(0);
    restore_checkpoint(&mut gpu, &ckpt, &fp, m.as_ref(), &mut reuse).expect("restore");
    reuse.gpu_cache.set_budget(8 << 20);
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    let feats: Vec<&Matrix> = graph.snapshots[frame_start..frame_start + cfg.window]
        .iter()
        .map(|s| &s.features)
        .collect();
    let opts = ExecOptions {
        s_per: 4,
        needs_adjacency_when_cached: m.needs_hidden_aggregation(),
        weight_reuse: m.supports_weight_reuse(),
        inter_frame_reuse: true,
        use_sliced: true,
    };
    let mut exec = PipadExecutor::stage(
        &mut gpu,
        &analyzer,
        &catalog,
        &feats,
        frame_start,
        opts,
        Some(&mut reuse),
        compute,
        copy,
        &mut host_cursor,
    )
    .expect("stage reference frame");
    let mut tape = Tape::new(compute);
    let out = m
        .forward_frame(&mut gpu, &mut tape, &mut exec)
        .expect("reference forward");
    let pred = tape.host(out.pred);
    tape.finish(&mut gpu);
    exec.finish(&mut gpu);
    pred
}

/// Serve the standard request plan from the newest checkpoint in `dir`.
fn serve(
    dir: &Path,
    model: ModelKind,
    graph: &DynamicGraph,
    cfg: &TrainingConfig,
    max_batch: usize,
) -> ServeReport {
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let ecfg = EngineConfig {
        hidden: HIDDEN,
        ..EngineConfig::default()
    };
    let mut engine = ServeEngine::from_latest(&mut gpu, dir, model, graph, cfg, &ecfg)
        .unwrap_or_else(|e| panic!("{}: engine restore failed: {e}", model.name()));
    serve_open_loop(&mut gpu, &mut engine, &sim_cfg(max_batch))
        .unwrap_or_else(|e| panic!("{}: serving failed: {e}", model.name()))
}

fn sim_cfg(max_batch: usize) -> ServeSimConfig {
    ServeSimConfig {
        // Queue capacity is generous so every request is admitted and the
        // bit-identity check covers the full plan.
        batch: BatchPolicy {
            max_batch,
            max_delay_ns: 250_000,
            queue_capacity: 64,
        },
        gen: RequestGenConfig {
            seed: 5,
            n_requests: 10,
            mean_interarrival_ns: 200_000,
            max_targets: 4,
            snapshot_period_ns: 500_000,
        },
    }
}

/// Every served logit of `report` must equal the reference forward of the
/// checkpoint at `path`, bit for bit, at the request's target rows.
fn assert_report_matches_reference(
    report: &ServeReport,
    path: &Path,
    model: ModelKind,
    graph: &DynamicGraph,
    cfg: &TrainingConfig,
) {
    let mut preds: BTreeMap<usize, Matrix> = BTreeMap::new();
    assert!(!report.records.is_empty());
    for rec in &report.records {
        let RequestOutcome::Served { logits, .. } = &rec.outcome else {
            panic!("{}: request {} was rejected", model.name(), rec.request.id);
        };
        let frame = rec.request.frame;
        let pred = preds
            .entry(frame)
            .or_insert_with(|| reference_forward(path, model, graph, cfg, frame));
        assert_eq!(logits.rows(), rec.request.targets.len());
        assert_eq!(logits.cols(), pred.cols());
        for (r, &node) in rec.request.targets.iter().enumerate() {
            for c in 0..logits.cols() {
                assert_eq!(
                    logits[(r, c)].to_bits(),
                    pred[(node, c)].to_bits(),
                    "{}: request {} frame {frame} node {node} col {c} drifted from the training forward",
                    model.name(),
                    rec.request.id,
                );
            }
        }
    }
}

fn assert_serving_matches_training(model: ModelKind, base: &Path) {
    let graph = graph();
    let cfg = cfg(4);
    let dir = base.join(model.name());
    train_into(&dir, model, &graph, &cfg);
    let (_, latest) = latest_checkpoint(&dir)
        .expect("scan checkpoint dir")
        .expect("training wrote a checkpoint");

    // Batched and one-at-a-time serving agree with each other...
    let batched = serve(&dir, model, &graph, &cfg, 4);
    let single = serve(&dir, model, &graph, &cfg, 1);
    assert_eq!(
        batched.served,
        batched.records.len(),
        "a request was rejected"
    );
    assert!(batched.batch_size_histogram.keys().any(|&s| s > 1));
    assert!(single.batch_size_histogram.keys().all(|&s| s == 1));
    assert_eq!(
        batched.served_logit_bytes(),
        single.served_logit_bytes(),
        "{}: batching changed the served bits",
        model.name()
    );

    // ...and both with the independently rebuilt train-time forward.
    assert_report_matches_reference(&batched, &latest, model, &graph, &cfg);

    std::fs::remove_dir_all(&dir).expect("cleanup checkpoints");
}

fn for_both_pool_modes(model: ModelKind) {
    let base = std::env::temp_dir().join(format!(
        "pipad-serve-equivalence-{}-{}",
        model.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    with_pool_enabled(true, || {
        assert_serving_matches_training(model, &base.join("pool"))
    });
    with_pool_enabled(false, || {
        assert_serving_matches_training(model, &base.join("nopool"))
    });
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn served_logits_match_training_forward_evolvegcn() {
    for_both_pool_modes(ModelKind::EvolveGcn);
}

#[test]
fn served_logits_match_training_forward_mpnn_lstm() {
    for_both_pool_modes(ModelKind::MpnnLstm);
}

#[test]
fn served_logits_match_training_forward_tgcn() {
    for_both_pool_modes(ModelKind::TGcn);
}

/// Restoring an older rotated checkpoint must serve *that* epoch's exact
/// forward bits — and those must differ from the newest checkpoint's
/// (SGD moved the parameters between rotations).
#[test]
fn rotated_checkpoint_serves_that_epochs_exact_bits() {
    let model = ModelKind::TGcn;
    let graph = graph();
    let cfg = cfg(6); // checkpoints rotate at epochs 1, 3, 5
    let base = std::env::temp_dir().join(format!("pipad-serve-rotated-{}", std::process::id()));
    let dir = base.join(model.name());
    train_into(&dir, model, &graph, &cfg);

    let ckpts = list_checkpoints(&dir).expect("scan checkpoint dir");
    assert!(
        ckpts.len() >= 2,
        "rotation kept {} checkpoints",
        ckpts.len()
    );
    let (old_epoch, old_path) = ckpts.first().cloned().expect("oldest checkpoint");
    let (new_epoch, _) = ckpts.last().cloned().expect("newest checkpoint");
    assert!(old_epoch < new_epoch);

    let serve_from = |path: &Path| -> ServeReport {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let ecfg = EngineConfig {
            hidden: HIDDEN,
            ..EngineConfig::default()
        };
        let mut engine =
            ServeEngine::from_checkpoint_path(&mut gpu, path, model, &graph, &cfg, &ecfg)
                .expect("engine restore failed");
        assert_eq!(
            engine.trained_epochs(),
            engine.trained_epochs().min(cfg.epochs)
        );
        serve_open_loop(&mut gpu, &mut engine, &sim_cfg(4)).expect("serving failed")
    };

    let old_report = serve_from(&old_path);
    let latest_report = serve(&dir, model, &graph, &cfg, 4);

    // The rotated restore serves its own epoch's bits...
    assert_report_matches_reference(&old_report, &old_path, model, &graph, &cfg);
    // ...which are not the newest epoch's bits.
    assert_ne!(
        old_report.served_logit_bytes(),
        latest_report.served_logit_bytes(),
        "epoch-{old_epoch} and epoch-{new_epoch} checkpoints served identical logits"
    );

    let _ = std::fs::remove_dir_all(&base);
}
