//! Chaos properties: training under an arbitrary *seeded* fault plan
//! either completes or fails with a typed [`DeviceFault`] — it never
//! panics — and the entire run, structured trace included, is a pure
//! function of the plan: byte-identical Chrome exports across repeats and
//! across host thread counts.
//!
//! Plans come from [`FaultPlan::seeded`], so each proptest case covers a
//! different random mix of one-shot OOMs, usage thresholds, transient
//! transfer faults, straggler windows and poisoned launches.
//!
//! The same contract extends to online serving: a checkpoint-restored
//! [`ServeEngine`] replaying requests under a seeded plan never panics,
//! every request either completes with finite logits or is rejected with
//! a typed reason, device-fault rejections leave `recovery` events in the
//! trace, and the whole run is thread-invariant.

use pipad::{train_pipad, PipadConfig};
use pipad_ckpt::CheckpointPolicy;
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{export_chrome_trace, DeviceConfig, FaultPlan, Gpu};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;
use pipad_repro::serve::{
    serve_open_loop, BatchPolicy, EngineConfig, RequestGenConfig, ServeEngine, ServeSimConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One full training run under `plan`: the loss bit-patterns (or the typed
/// error's message) plus the Chrome-trace export.
fn run_once(plan: &FaultPlan) -> (Result<Vec<u32>, String>, String) {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    gpu.install_faults(plan.clone());
    let res = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        16,
        &cfg,
        &PipadConfig::default(),
    );
    let outcome = match res {
        Ok(r) => Ok(r.losses().iter().map(|l| l.to_bits()).collect()),
        Err(e) => Err(e.to_string()),
    };
    (outcome, export_chrome_trace(gpu.trace(), 0))
}

fn serve_cfg() -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    }
}

/// Train once per process (fault-free, with checkpoints) and share the
/// checkpoint directory across every chaos case.
fn shared_checkpoint_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pipad-serve-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let pcfg = PipadConfig {
            checkpoint: Some(CheckpointPolicy::new(dir.clone(), 2)),
            ..PipadConfig::default()
        };
        train_pipad(&mut gpu, ModelKind::TGcn, &graph, 8, &serve_cfg(), &pcfg)
            .expect("fault-free training leg failed");
        dir
    })
}

/// Serving outcome under `plan`: per-request disposition counts plus the
/// served logit bits, or the typed error's message; and the trace export.
#[allow(clippy::type_complexity)]
fn serve_once(
    plan: &FaultPlan,
) -> (
    Result<(usize, usize, usize, usize, Vec<u8>), String>,
    String,
) {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = serve_cfg();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    gpu.install_faults(plan.clone());
    let ecfg = EngineConfig {
        hidden: 8,
        ..EngineConfig::default()
    };
    let scfg = ServeSimConfig {
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ns: 250_000,
            queue_capacity: 16,
        },
        gen: RequestGenConfig {
            seed: 5,
            n_requests: 12,
            mean_interarrival_ns: 200_000,
            max_targets: 4,
            snapshot_period_ns: 500_000,
        },
    };
    let res = (|| {
        let mut engine = ServeEngine::from_latest(
            &mut gpu,
            shared_checkpoint_dir(),
            ModelKind::TGcn,
            &graph,
            &cfg,
            &ecfg,
        )?;
        serve_open_loop(&mut gpu, &mut engine, &scfg)
    })();
    let outcome = match res {
        Ok(r) => Ok((
            r.served,
            r.rejected_fault,
            r.rejected_poisoned,
            r.rejected_queue_full,
            r.served_logit_bytes(),
        )),
        Err(e) => Err(e.to_string()),
    };
    (outcome, export_chrome_trace(gpu.trace(), 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seeded_serving_never_panics_and_requests_are_accounted_for(seed in 0u64..u64::MAX) {
        let plan = FaultPlan::seeded(seed);
        // Returning at all — a report or a typed ServeError — IS the
        // no-panic property.
        let (r1, t1) = with_threads(1, || serve_once(&plan));
        let (r4, t4) = with_threads(4, || serve_once(&plan));
        prop_assert_eq!(&r1, &r4, "serving outcome differs across host thread counts (seed {})", seed);
        prop_assert_eq!(&t1, &t4, "serving trace differs across host thread counts (seed {})", seed);

        match r1 {
            Ok((served, faulted, poisoned, queue_full, logit_bytes)) => {
                // Every request completed or was rejected with a typed
                // reason — none vanished.
                prop_assert_eq!(served + faulted + poisoned + queue_full, 12,
                    "requests lost under chaos (seed {})", seed);
                // Served logits are never poisoned: non-finite outputs
                // must have been rejected, not served.
                for bits in logit_bytes.chunks_exact(4) {
                    let v = f32::from_le_bytes([bits[0], bits[1], bits[2], bits[3]]);
                    prop_assert!(v.is_finite(), "served a non-finite logit (seed {})", seed);
                }
                // Device-fault rejections go through the recovery ladder,
                // which documents itself in the trace.
                if faulted > 0 {
                    prop_assert!(t1.contains("serve_reject_batch"),
                        "fault rejections left no recovery event (seed {})", seed);
                }
                if faulted > 0 || poisoned > 0 {
                    prop_assert!(t1.contains("recovery"),
                        "rejections left no recovery event (seed {})", seed);
                }
            }
            // Engine construction can also hit injected faults; that too
            // must surface as a typed, rendered error.
            Err(msg) => prop_assert!(!msg.is_empty(), "typed error must render a message"),
        }
    }

    #[test]
    fn seeded_plans_never_panic_and_runs_are_thread_invariant(seed in 0u64..u64::MAX) {
        let plan = FaultPlan::seeded(seed);
        // `run_once` returning at all — Ok or a typed error — IS the
        // no-panic property: any panic fails the test.
        let (r1, t1) = with_threads(1, || run_once(&plan));
        let (r4, t4) = with_threads(4, || run_once(&plan));
        let (r1b, t1b) = with_threads(1, || run_once(&plan));

        // Identical plan => byte-identical trace, at 1 or 4 host threads
        // and across repeats.
        prop_assert_eq!(&r1, &r4, "outcome differs across host thread counts (seed {})", seed);
        prop_assert_eq!(&r1, &r1b, "outcome differs across repeats (seed {})", seed);
        prop_assert_eq!(&t1, &t4, "chrome trace differs across host thread counts (seed {})", seed);
        prop_assert_eq!(&t1, &t1b, "chrome trace differs across repeats (seed {})", seed);

        match r1 {
            Ok(losses) => prop_assert!(!losses.is_empty(), "completed run must report losses"),
            // A failing run surfaces a typed DeviceFault whose Display
            // carries the fault detail (OOM attribution label, transfer op
            // index, ...) — never an empty or panicky message.
            Err(msg) => prop_assert!(!msg.is_empty(), "typed error must render a message"),
        }
    }
}
