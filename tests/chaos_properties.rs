//! Chaos properties: training under an arbitrary *seeded* fault plan
//! either completes or fails with a typed [`DeviceFault`] — it never
//! panics — and the entire run, structured trace included, is a pure
//! function of the plan: byte-identical Chrome exports across repeats and
//! across host thread counts.
//!
//! Plans come from [`FaultPlan::seeded`], so each proptest case covers a
//! different random mix of one-shot OOMs, usage thresholds, transient
//! transfer faults, straggler windows and poisoned launches.

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{export_chrome_trace, DeviceConfig, FaultPlan, Gpu};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;
use proptest::prelude::*;

/// One full training run under `plan`: the loss bit-patterns (or the typed
/// error's message) plus the Chrome-trace export.
fn run_once(plan: &FaultPlan) -> (Result<Vec<u32>, String>, String) {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    gpu.install_faults(plan.clone());
    let res = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        16,
        &cfg,
        &PipadConfig::default(),
    );
    let outcome = match res {
        Ok(r) => Ok(r.losses().iter().map(|l| l.to_bits()).collect()),
        Err(e) => Err(e.to_string()),
    };
    (outcome, export_chrome_trace(gpu.trace(), 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seeded_plans_never_panic_and_runs_are_thread_invariant(seed in 0u64..u64::MAX) {
        let plan = FaultPlan::seeded(seed);
        // `run_once` returning at all — Ok or a typed error — IS the
        // no-panic property: any panic fails the test.
        let (r1, t1) = with_threads(1, || run_once(&plan));
        let (r4, t4) = with_threads(4, || run_once(&plan));
        let (r1b, t1b) = with_threads(1, || run_once(&plan));

        // Identical plan => byte-identical trace, at 1 or 4 host threads
        // and across repeats.
        prop_assert_eq!(&r1, &r4, "outcome differs across host thread counts (seed {})", seed);
        prop_assert_eq!(&r1, &r1b, "outcome differs across repeats (seed {})", seed);
        prop_assert_eq!(&t1, &t4, "chrome trace differs across host thread counts (seed {})", seed);
        prop_assert_eq!(&t1, &t1b, "chrome trace differs across repeats (seed {})", seed);

        match r1 {
            Ok(losses) => prop_assert!(!losses.is_empty(), "completed run must report losses"),
            // A failing run surfaces a typed DeviceFault whose Display
            // carries the fault detail (OOM attribution label, transfer op
            // index, ...) — never an empty or panicky message.
            Err(msg) => prop_assert!(!msg.is_empty(), "typed error must render a message"),
        }
    }
}
