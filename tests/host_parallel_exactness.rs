//! Bit-exactness of the host-parallel execution layer.
//!
//! Every host-numerics hot path partitions work by disjoint output rows, so
//! the floating-point accumulation order is identical to the serial code.
//! These tests pin that contract: raw `f32::to_bits` equality (not
//! tolerance) across thread counts {1, 2, 7} — including counts larger than
//! the machine — and across degenerate shapes (empty, one row,
//! band-non-divisible, above the parallel threshold).

use pipad_gpu_sim::{DeviceConfig, Gpu, KernelCategory};
use pipad_kernels as k;
use pipad_kernels::{DeviceMatrix, DeviceSliced};
use pipad_pool::with_threads;
use pipad_sparse::{Csr, SlicedCsr};
use pipad_tensor::{gemm, gemm_nt, gemm_tn, Matrix};
use std::rc::Rc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Deterministic fill (splitmix-style) so inputs are identical everywhere.
fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let mut z = (r as u64) << 32 | (c as u64) ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// Deterministic sparse topology with `salt`-dependent structure.
fn sparse(rows: usize, cols: usize, salt: u64) -> Csr {
    let mut edges = Vec::new();
    for r in 0..rows as u64 {
        let deg = (r.wrapping_mul(salt | 1) % 7) as u32;
        for d in 0..deg {
            let c = (r.wrapping_mul(31).wrapping_add(d as u64 * 17 + salt)) % cols.max(1) as u64;
            edges.push((r as u32, c as u32));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Csr::from_edges(rows, cols, &edges)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Run `f` under every thread count and assert all results are bit-equal to
/// the single-thread baseline.
fn assert_bit_identical(label: &str, f: impl Fn() -> Matrix) {
    let baseline = with_threads(1, &f);
    for &n in &THREAD_COUNTS[1..] {
        let got = with_threads(n, &f);
        assert_eq!(
            got.shape(),
            baseline.shape(),
            "{label}: shape at {n} threads"
        );
        assert_eq!(
            bits(&got),
            bits(&baseline),
            "{label}: bits differ at {n} threads"
        );
    }
}

// (m, k, n) GEMM shapes: empty, one row, band-non-divisible, above the
// FLOP-volume parallel threshold (130·128·128 > 2^20).
const GEMM_SHAPES: [(usize, usize, usize); 5] = [
    (0, 0, 0),
    (1, 5, 3),
    (13, 7, 5),
    (64, 33, 17),
    (130, 128, 128),
];

#[test]
fn gemm_bit_identical_across_thread_counts() {
    for &(m, kk, n) in &GEMM_SHAPES {
        let a = fill(m, kk, 1);
        let b = fill(kk, n, 2);
        assert_bit_identical(&format!("gemm {m}x{kk}x{n}"), || gemm(&a, &b));
    }
}

#[test]
fn gemm_tn_and_nt_bit_identical_across_thread_counts() {
    for &(m, kk, n) in &GEMM_SHAPES {
        let at = fill(kk, m, 3); // gemm_tn computes Aᵀ·B
        let b = fill(kk, n, 4);
        assert_bit_identical(&format!("gemm_tn {m}x{kk}x{n}"), || gemm_tn(&at, &b));
        let a = fill(m, kk, 5);
        let bt = fill(n, kk, 6); // gemm_nt computes A·Bᵀ
        assert_bit_identical(&format!("gemm_nt {m}x{kk}x{n}"), || gemm_nt(&a, &bt));
    }
}

#[test]
fn spmm_dense_bit_identical_across_thread_counts() {
    for &(rows, cols, feat) in &[
        (0usize, 4usize, 4usize),
        (1, 6, 3),
        (13, 13, 5),
        (700, 700, 32),
    ] {
        let adj = sparse(rows, cols, 11);
        let x = fill(cols, feat, 7);
        assert_bit_identical(&format!("spmm_dense {rows}x{cols}x{feat}"), || {
            adj.spmm_dense(&x)
        });
    }
}

#[test]
fn sliced_spmm_bit_identical_across_thread_counts() {
    for &(rows, feat, s_per) in &[(1usize, 3usize, 1usize), (13, 5, 2), (500, 16, 4)] {
        let adj = Rc::new(SlicedCsr::from_csr(&sparse(rows, rows, 13)));
        let coalesced = fill(rows, feat * s_per, 8);
        assert_bit_identical(&format!("sliced_spmm {rows}x{feat}x{s_per}"), || {
            let mut gpu = Gpu::new(DeviceConfig::v100());
            let s = gpu.default_stream();
            let handle = DeviceSliced::resident(Rc::clone(&adj));
            let d = DeviceMatrix::alloc(&mut gpu, coalesced.clone()).unwrap();
            let out = k::spmm_sliced_parallel(&mut gpu, s, &handle, &d, s_per).unwrap();
            out.free(&mut gpu)
        });
    }
}

#[test]
fn elementwise_add_bias_bit_identical_across_thread_counts() {
    for &(rows, cols) in &[(1usize, 4usize), (13, 7), (600, 64)] {
        let x = fill(rows, cols, 9);
        let bias = fill(1, cols, 10);
        assert_bit_identical(&format!("add_bias {rows}x{cols}"), || {
            let mut gpu = Gpu::new(DeviceConfig::v100());
            let s = gpu.default_stream();
            let dx = DeviceMatrix::alloc(&mut gpu, x.clone()).unwrap();
            let db = DeviceMatrix::alloc(&mut gpu, bias.clone()).unwrap();
            let out = k::add_bias(&mut gpu, s, &dx, &db, KernelCategory::Update).unwrap();
            out.free(&mut gpu)
        });
    }
}

#[test]
fn matrix_map_and_col_sums_bit_identical_across_thread_counts() {
    for &(rows, cols) in &[(0usize, 0usize), (1, 9), (13, 5), (600, 64)] {
        let x = fill(rows, cols, 12);
        assert_bit_identical(&format!("map {rows}x{cols}"), || x.map(|v| v * 1.5 + 0.25));
        let baseline = with_threads(1, || x.col_sums());
        for &n in &THREAD_COUNTS[1..] {
            let got = with_threads(n, || x.col_sums());
            let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = baseline.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, bb, "col_sums {rows}x{cols} at {n} threads");
        }
    }
}
