//! Ablation integration tests: switch PiPAD's mechanisms off one at a time
//! and check each one actually carries weight (the DESIGN.md inventory's
//! per-mechanism attribution).

use pipad_repro::dyngraph::{DatasetId, DynamicGraph, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainReport, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn graph() -> DynamicGraph {
    DatasetId::Covid19England.gen_config(Scale::Tiny).generate()
}

fn cfg() -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 9,
    }
}

fn run(model: ModelKind, pcfg: &PipadConfig) -> TrainReport {
    let g = graph();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_pipad(&mut gpu, model, &g, 16, &cfg(), pcfg).unwrap()
}

#[test]
fn inter_frame_reuse_carries_weight() {
    let with = run(ModelKind::TGcn, &PipadConfig::default());
    let without = run(
        ModelKind::TGcn,
        &PipadConfig {
            inter_frame_reuse: false,
            ..Default::default()
        },
    );
    // On T-GCN reuse eliminates all aggregation: both kernels and bytes drop.
    assert!(
        with.steady_epoch_time < without.steady_epoch_time,
        "reuse on {} vs off {}",
        with.steady_epoch_time,
        without.steady_epoch_time
    );
    assert!(with.steady.h2d_bytes < without.steady.h2d_bytes);
    let agg = |r: &TrainReport| {
        r.steady
            .compute_by_category
            .get("aggregation")
            .map(|t| t.as_nanos())
            .unwrap_or(0)
    };
    assert!(agg(&with) < agg(&without));
}

#[test]
fn cuda_graph_mode_cuts_launch_gaps() {
    let with = run(ModelKind::MpnnLstm, &PipadConfig::default());
    let without = run(
        ModelKind::MpnnLstm,
        &PipadConfig {
            cuda_graph: false,
            ..Default::default()
        },
    );
    assert!(
        with.steady_epoch_time < without.steady_epoch_time,
        "graphed {} vs individual {}",
        with.steady_epoch_time,
        without.steady_epoch_time
    );
    // identical kernel stream, only launch overheads differ
    assert_eq!(with.steady.kernel_launches, without.steady.kernel_launches);
    assert_eq!(
        with.steady.gmem_transactions,
        without.steady.gmem_transactions
    );
}

#[test]
fn ablations_do_not_change_numerics() {
    let reference = run(ModelKind::EvolveGcn, &PipadConfig::default()).losses();
    for pcfg in [
        PipadConfig {
            inter_frame_reuse: false,
            ..Default::default()
        },
        PipadConfig {
            cuda_graph: false,
            ..Default::default()
        },
        PipadConfig {
            use_sliced: false,
            ..Default::default()
        },
        PipadConfig {
            force_s_per: Some(4),
            ..Default::default()
        },
    ] {
        let losses = run(ModelKind::EvolveGcn, &pcfg).losses();
        for (a, b) in losses.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 5e-3,
                "ablation changed learning: {a} vs {b} ({pcfg:?})"
            );
        }
    }
}

#[test]
fn larger_partitions_reduce_aggregation_traffic() {
    // The intra-frame parallelism win is memory traffic (the overlap
    // topology is read once per partition, and sub-transaction feature rows
    // coalesce), not launch count — exclusive parts add small launches.
    // Use a 2-dim dataset: the coalescing effect lives below 8 floats/row.
    let txns = |s_per: usize| {
        let g = DatasetId::Youtube.gen_config(Scale::Tiny).generate();
        let mut gpu = Gpu::new(DeviceConfig::v100());
        train_pipad(
            &mut gpu,
            ModelKind::EvolveGcn,
            &g,
            6,
            &cfg(),
            &PipadConfig {
                force_s_per: Some(s_per),
                inter_frame_reuse: false,
                cuda_graph: false,
                ..Default::default()
            },
        )
        .unwrap();
        gpu.profiler().full().gmem_transactions
    };
    let single = txns(1);
    let grouped = txns(8);
    assert!(
        grouped < single,
        "grouped txns {grouped} vs per-snapshot {single}"
    );
}

#[test]
fn tuner_prefers_larger_partitions_with_memory() {
    // Plenty of memory + slow topology change → the tuner should pick
    // S_per > 1 for every frame (observable through parallel kernels).
    let g = graph();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_pipad(
        &mut gpu,
        ModelKind::EvolveGcn,
        &g,
        16,
        &cfg(),
        &PipadConfig {
            inter_frame_reuse: false,
            ..Default::default()
        },
    )
    .unwrap();
    let multi = gpu.profiler().samples().iter().any(|s| {
        s.name == "spmm_sliced_parallel" && {
            matches!(s.kind, pipad_repro::gpu_sim::SampleKind::Kernel { flops, .. } if flops > 0)
        }
    });
    assert!(
        multi,
        "expected parallel aggregation kernels in steady epochs"
    );
}
