//! Allocation-budget gate for multi-GPU training: the sharded trainer's
//! steady-state epochs must stay on the buffer-pool hot path just like the
//! single-GPU pipeline — halo blocks, capture snapshots, gradient sums and
//! staging temporaries all recycle through the pool, so pool misses drop
//! by ≥95% once the preparing epochs have warmed it.
//!
//! This file holds exactly one test: heap counters are process-global,
//! so the binary must not run unrelated tests concurrently.

use pipad::{train_data_parallel, MultiGpuConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_tensor::{reset_pool, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn multi_gpu_steady_epochs_stay_on_the_pool_hot_path() {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    // MPNN-LSTM exercises the full halo-exchange machinery (capture pass,
    // peer-block slicing, two-sweep backward) — the paths most likely to
    // leak un-pooled allocations.
    for model in [ModelKind::TGcn, ModelKind::MpnnLstm] {
        reset_pool();
        let report = train_data_parallel(
            model,
            &graph,
            8,
            &cfg,
            &MultiGpuConfig {
                n_gpus: 2,
                ..Default::default()
            },
        )
        .expect("train");

        let mean = |preparing: bool, f: &dyn Fn(&pipad_models::HostAllocStats) -> u64| -> f64 {
            let sel: Vec<u64> = report
                .epochs
                .iter()
                .filter(|e| (e.epoch < cfg.preparing_epochs) == preparing)
                .map(|e| f(&e.alloc))
                .collect();
            assert!(!sel.is_empty());
            sel.iter().sum::<u64>() as f64 / sel.len() as f64
        };

        for e in &report.epochs {
            assert!(
                e.alloc.heap_allocs > 0,
                "{model:?} epoch {}: allocator not counting",
                e.epoch
            );
            assert!(
                e.alloc.pool_hits > 0,
                "{model:?} epoch {}: pool never hit",
                e.epoch
            );
        }

        let prep_misses = mean(true, &|s| s.pool_misses);
        let steady_misses = mean(false, &|s| s.pool_misses);
        assert!(
            steady_misses <= 0.05 * prep_misses,
            "{model:?}: steady multi-GPU epochs still hit the heap on the hot \
             path: {steady_misses:.0} misses/epoch vs {prep_misses:.0} \
             preparing (need >=95% reduction)"
        );
    }
}
