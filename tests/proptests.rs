//! Property-based suites over the core data structures and invariants,
//! spanning crates: graph formats, overlap extraction, kernel/reference
//! agreement, space-cost formulas, simulator monotonicity and the serving
//! micro-batcher's admission/formation policy.

use pipad_repro::gpu_sim::{schedule_blocks, DeviceConfig, Gpu, SimNanos};
use pipad_repro::kernels::{
    spmm_coo_scatter, spmm_gespmm, spmm_sliced_parallel, upload_csr, upload_matrix, upload_sliced,
};
use pipad_repro::metrics::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Log2Histogram, LOG2_BUCKETS,
};
use pipad_repro::serve::{form_batches, BatchPolicy, RejectReason, Request};
use pipad_repro::sparse::{
    csr_row_work, extract_overlap, graph_diff, partition_rows_balanced, Csr, SlicedCsr,
};
use pipad_repro::tensor::Matrix;
use proptest::prelude::*;
use std::collections::HashSet;
use std::rc::Rc;

/// Strategy: a random edge list over up to `n` vertices.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..=n).prop_flat_map(move |nv| {
        let edge = (0..nv, 0..nv);
        (Just(nv), proptest::collection::vec(edge, 0..max_edges))
    })
}

/// Strategy: a random symmetric graph.
fn sym_graph(n: u32, max_edges: usize) -> impl Strategy<Value = Csr> {
    edges(n, max_edges).prop_map(|(nv, es)| {
        let mut sym = Vec::with_capacity(es.len() * 2);
        for (u, v) in es {
            if u != v {
                sym.push((u, v));
                sym.push((v, u));
            }
        }
        Csr::from_edges(nv as usize, nv as usize, &sym)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_round_trips(rows in 1usize..24, cols in 1usize..24, salt in 0u64..1000) {
        // Pool-backed transpose writes every slot through MaybeUninit; a
        // double transpose must reproduce the input bit-for-bit, also
        // when served from recycled (previously dirty) buffers.
        let m = Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7) as f32).mul_add(0.125, salt as f32 * 0.01) - 1.0
        });
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (cols, rows));
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m[(r, c)].to_bits(), t[(c, r)].to_bits());
            }
        }
        let tt = t.transpose();
        prop_assert_eq!(&tt, &m);
        t.recycle();
        tt.recycle();
        m.recycle();
    }

    #[test]
    fn slice_rows_concat_rows_round_trips(
        rows in 1usize..24,
        cols in 1usize..16,
        cut_a in 0usize..25,
        cut_b in 0usize..25,
    ) {
        let m = Matrix::from_fn(rows, cols, |r, c| (r * 131 + c) as f32 * 0.5 - 3.0);
        let (a, b) = (cut_a.min(rows), cut_b.min(rows));
        let (lo, hi) = (a.min(b), a.max(b));
        // Any slice matches the source elementwise...
        let mid = m.slice_rows(lo, hi);
        prop_assert_eq!(mid.shape(), (hi - lo, cols));
        for r in 0..hi - lo {
            for c in 0..cols {
                prop_assert_eq!(mid[(r, c)].to_bits(), m[(lo + r, c)].to_bits());
            }
        }
        // ...and re-concatenating the three-way split reproduces the input.
        let head = m.slice_rows(0, lo);
        let tail = m.slice_rows(hi, rows);
        let back = Matrix::concat_rows(&[&head, &mid, &tail]);
        prop_assert_eq!(&back, &m);
        for part in [head, mid, tail, back, m] {
            part.recycle();
        }
    }

    #[test]
    fn csr_coo_round_trip((nv, es) in edges(40, 120)) {
        let csr = Csr::from_edges(nv as usize, nv as usize, &es);
        prop_assert_eq!(csr.to_coo().to_csr(), csr);
    }

    #[test]
    fn sliced_round_trip_any_cap((nv, es) in edges(40, 120), cap in 1usize..40) {
        let csr = Csr::from_edges(nv as usize, nv as usize, &es);
        let sliced = SlicedCsr::from_csr_with_cap(&csr, cap);
        prop_assert_eq!(sliced.to_csr(), csr.clone());
        // every slice respects the cap and nnz is conserved
        prop_assert!(sliced.slice_sizes().iter().all(|&s| s as usize <= cap));
        prop_assert_eq!(sliced.nnz(), csr.nnz());
    }

    #[test]
    fn space_formulas((nv, es) in edges(40, 120)) {
        let csr = Csr::from_edges(nv as usize, nv as usize, &es);
        let sliced = SlicedCsr::from_csr(&csr);
        let coo = csr.to_coo();
        let nnz = csr.nnz() as u64;
        prop_assert_eq!(csr.words(), 2 * nnz + nv as u64 + 1);
        prop_assert_eq!(coo.words(), 3 * nnz);
        prop_assert_eq!(sliced.words(), 2 * nnz + 2 * sliced.n_slices() as u64 + 1);
    }

    #[test]
    fn transpose_involution((nv, es) in edges(30, 100)) {
        let csr = Csr::from_edges(nv as usize, nv as usize, &es);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn overlap_partition_property(
        base in sym_graph(24, 60),
        extra_a in sym_graph(24, 20),
        extra_b in sym_graph(24, 20),
    ) {
        // Build two snapshots sharing `base`: overlap ⊇ base; and overlap ∪
        // exclusive reassembles each snapshot with disjoint edge sets.
        let n = base.n_rows().max(extra_a.n_rows()).max(extra_b.n_rows());
        let grow = |g: &Csr, extra: &Csr| {
            let mut e = g.edges();
            e.extend(extra.edges().into_iter().filter(|&(u, v)| (u as usize) < n && (v as usize) < n));
            Csr::from_edges(n, n, &e)
        };
        let pad = |g: &Csr| Csr::from_edges(n, n, &g.edges());
        let a = grow(&pad(&base), &extra_a);
        let b = grow(&pad(&base), &extra_b);
        let split = extract_overlap(&[&a, &b]);
        // overlap contains every base edge
        for (u, v) in pad(&base).edges() {
            prop_assert!(split.overlap.contains(u, v));
        }
        // reassembly is exact and disjoint
        for (i, snap) in [&a, &b].into_iter().enumerate() {
            prop_assert_eq!(&split.reassemble(i), snap);
            let ov: HashSet<_> = split.overlap.edges().into_iter().collect();
            for e in split.exclusives[i].edges() {
                prop_assert!(!ov.contains(&e), "exclusive edge also in overlap");
            }
        }
    }

    #[test]
    fn graph_diff_applies((nv, es1) in edges(30, 80), es2 in proptest::collection::vec((0u32..30, 0u32..30), 0..80)) {
        let a = Csr::from_edges(nv as usize, nv as usize, &es1);
        let es2: Vec<(u32,u32)> = es2.into_iter().filter(|&(u,v)| u < nv && v < nv).collect();
        let b = Csr::from_edges(nv as usize, nv as usize, &es2);
        let (added, removed) = graph_diff(&a, &b);
        let mut edges: Vec<(u32, u32)> =
            a.edges().into_iter().filter(|e| !removed.contains(e)).collect();
        edges.extend(added);
        prop_assert_eq!(Csr::from_edges(nv as usize, nv as usize, &edges), b);
    }

    #[test]
    fn all_aggregation_kernels_agree(
        adj in sym_graph(24, 80),
        dim in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = pipad_repro::tensor::seeded_rng(seed);
        let x = pipad_repro::tensor::uniform(&mut rng, adj.n_rows(), dim, 1.0);
        let expect = adj.spmm_dense(&x);

        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s = gpu.default_stream();
        let shared = Rc::new(adj.clone());
        let dcsr = upload_csr(&mut gpu, s, Rc::clone(&shared), true).unwrap();
        let dx = upload_matrix(&mut gpu, s, &x, true).unwrap();
        let y1 = spmm_coo_scatter(&mut gpu, s, &dcsr, &dx).unwrap();
        let y2 = spmm_gespmm(&mut gpu, s, &dcsr, &dx).unwrap();
        let sliced = Rc::new(SlicedCsr::from_csr(&adj));
        let dsl = upload_sliced(&mut gpu, s, sliced, true).unwrap();
        let y3 = spmm_sliced_parallel(&mut gpu, s, &dsl, &dx, 1).unwrap();
        prop_assert!(y1.host().approx_eq(&expect, 1e-3));
        prop_assert!(y2.host().approx_eq(&expect, 1e-3));
        prop_assert!(y3.host().approx_eq(&expect, 1e-3));
    }

    #[test]
    fn parallel_aggregation_equals_per_snapshot(
        adj in sym_graph(20, 60),
        s_per in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = pipad_repro::tensor::seeded_rng(seed);
        let dim = 3usize;
        let feats: Vec<Matrix> = (0..s_per)
            .map(|_| pipad_repro::tensor::uniform(&mut rng, adj.n_rows(), dim, 1.0))
            .collect();
        let refs: Vec<&Matrix> = feats.iter().collect();
        let co = Matrix::concat_cols(&refs);

        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s = gpu.default_stream();
        let sliced = Rc::new(SlicedCsr::from_csr(&adj));
        let dsl = upload_sliced(&mut gpu, s, sliced, true).unwrap();
        let dco = upload_matrix(&mut gpu, s, &co, true).unwrap();
        let out = spmm_sliced_parallel(&mut gpu, s, &dsl, &dco, s_per).unwrap();
        let parts = out.host().split_cols(s_per);
        for (p, x) in parts.iter().zip(&feats) {
            prop_assert!(p.approx_eq(&adj.spmm_dense(x), 1e-3));
        }
    }

    #[test]
    fn schedule_makespan_bounds(work in proptest::collection::vec(0u64..1000, 1..200), slots in 1usize..64) {
        let r = schedule_blocks(&work, slots);
        let total: u64 = work.iter().sum();
        let max = work.iter().copied().max().unwrap_or(0);
        // classical list-scheduling bounds
        prop_assert!(r.makespan >= total.div_ceil(slots as u64).min(total));
        prop_assert!(r.makespan >= max);
        if total > 0 {
            prop_assert!(r.makespan <= total);
            prop_assert!(r.factor() >= 1.0);
            // Graham bound: ≤ 2 × OPT for list scheduling
            prop_assert!(r.makespan <= 2 * (total / slots as u64 + max));
        }
    }

    #[test]
    fn sim_time_is_monotone_in_work(flops in 1u64..1_000_000_000, extra in 1u64..1_000_000_000) {
        let cfg = DeviceConfig::v100();
        let a = SimNanos::from_units(flops, cfg.flops_per_ns);
        let b = SimNanos::from_units(flops + extra, cfg.flops_per_ns);
        prop_assert!(b >= a);
    }

    #[test]
    fn matrix_concat_split_inverse(
        rows in 1usize..20,
        cols in 1usize..8,
        parts in 1usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = pipad_repro::tensor::seeded_rng(seed);
        let mats: Vec<Matrix> = (0..parts)
            .map(|_| pipad_repro::tensor::uniform(&mut rng, rows, cols, 1.0))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let cat = Matrix::concat_cols(&refs);
        let back = cat.split_cols(parts);
        for (a, b) in back.iter().zip(&mats) {
            prop_assert_eq!(a, b);
        }
        let rcat = Matrix::concat_rows(&refs);
        for (i, m) in mats.iter().enumerate() {
            prop_assert_eq!(&rcat.slice_rows(i * rows, (i + 1) * rows), m);
        }
    }
}

/// Map a balanced partition to a per-row owner vector.
fn owners(ranges: &[(usize, usize)], n: usize) -> Vec<usize> {
    let mut own = vec![usize::MAX; n];
    for (p, &(lo, hi)) in ranges.iter().enumerate() {
        own[lo..hi].fill(p);
    }
    own
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn balanced_partition_is_a_disjoint_cover(g in sym_graph(48, 160), parts in 1usize..6) {
        // Whatever the degree distribution, the shard ranges must be
        // contiguous, disjoint, nonempty, and cover every vertex.
        let work = csr_row_work(&g);
        let ranges = partition_rows_balanced(&work, parts);
        prop_assert!(!ranges.is_empty());
        prop_assert!(ranges.len() <= parts);
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges[ranges.len() - 1].1, work.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "ranges must tile contiguously");
        }
        for &(lo, hi) in &ranges {
            prop_assert!(lo < hi, "every shard owns at least one row");
        }
    }

    #[test]
    fn balanced_partition_bounds_nnz_imbalance(
        n in 32usize..96,
        parts in 2usize..5,
        seed in 0u64..500,
    ) {
        // With per-row work in a narrow band (no mega-hubs) and plenty of
        // rows per part, the greedy prefix split must keep the heaviest
        // shard within 1.10× of the mean shard work.
        let work: Vec<u64> = (0..n)
            .map(|r| 8 + (r as u64 * 2654435761 + seed * 40503) % 5)
            .collect();
        let ranges = partition_rows_balanced(&work, parts);
        prop_assert_eq!(ranges.len(), parts);
        let shard_work: Vec<u64> = ranges
            .iter()
            .map(|&(lo, hi)| work[lo..hi].iter().sum())
            .collect();
        let mean = work.iter().sum::<u64>() as f64 / parts as f64;
        let max = *shard_work.iter().max().unwrap() as f64;
        prop_assert!(
            max <= 1.10 * mean,
            "imbalance {:.3} exceeds 1.10 (shards {:?})",
            max / mean,
            shard_work
        );
    }

    #[test]
    fn balanced_partition_is_stable_under_edge_churn(
        n in 40usize..96,
        parts in 2usize..5,
        seed in 0u64..500,
    ) {
        // ~10% of rows gain or lose a few edges between snapshots; the
        // partition of the perturbed work vector must keep at least 75%
        // of rows with their original shard.
        let base: Vec<u64> = (0..n)
            .map(|r| 8 + (r as u64 * 2654435761 + seed * 97) % 8)
            .collect();
        let churned: Vec<u64> = base
            .iter()
            .enumerate()
            .map(|(r, &w)| {
                if (r as u64 + seed).is_multiple_of(10) {
                    // alternate add/remove a couple of edges, floor at 1
                    if r % 2 == 0 { w + 2 } else { w.saturating_sub(2).max(1) }
                } else {
                    w
                }
            })
            .collect();
        let a = owners(&partition_rows_balanced(&base, parts), n);
        let b = owners(&partition_rows_balanced(&churned, parts), n);
        let moved = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        prop_assert!(
            moved * 4 <= n,
            "{moved}/{n} rows changed shards under ~10% churn"
        );
    }
}

/// Strategy → a sorted open-loop arrival plan for the micro-batcher.
fn arrival_plan() -> impl Strategy<Value = Vec<Request>> {
    proptest::collection::vec(0u64..400_000, 1..60).prop_map(|gaps| {
        let mut t = 0u64;
        gaps.iter()
            .enumerate()
            .map(|(i, &gap)| {
                t += gap;
                Request {
                    id: i as u64,
                    arrival: SimNanos(t),
                    frame: i % 3,
                    targets: vec![i % 5],
                }
            })
            .collect()
    })
}

fn batch_policy() -> impl Strategy<Value = BatchPolicy> {
    (1usize..6, 1_000u64..400_000, 1usize..10).prop_map(|(max_batch, max_delay_ns, cap)| {
        BatchPolicy {
            max_batch,
            max_delay_ns,
            queue_capacity: cap,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batcher_neither_loses_nor_duplicates_requests(
        reqs in arrival_plan(),
        policy in batch_policy(),
    ) {
        // Every request ends up exactly once: in some batch or in the
        // rejection list — independent of policy knobs.
        let n = reqs.len();
        let (batches, rejected, stats) = form_batches(&reqs, &policy);
        let mut ids: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.requests.iter().map(|r| r.id))
            .chain(rejected.iter().map(|(r, _)| r.id))
            .collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(stats.admitted + stats.rejected_queue_full, n);
        prop_assert_eq!(stats.rejected_queue_full, rejected.len());
        for (_, reason) in &rejected {
            prop_assert_eq!(
                reason,
                &RejectReason::QueueFull { capacity: policy.queue_capacity }
            );
        }
    }

    #[test]
    fn batcher_is_fifo(reqs in arrival_plan(), policy in batch_policy()) {
        // Within a batch, and across the batch sequence, admitted
        // requests keep their arrival order.
        let (batches, _, _) = form_batches(&reqs, &policy);
        let flat: Vec<u64> = batches
            .iter()
            .flat_map(|b| b.requests.iter().map(|r| r.id))
            .collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        prop_assert_eq!(flat, sorted, "batch formation reordered requests");
        for w in batches.windows(2) {
            prop_assert!(w[0].seq < w[1].seq);
            prop_assert!(w[0].formed_at <= w[1].formed_at);
        }
    }

    #[test]
    fn batcher_honors_max_delay_and_max_batch(
        reqs in arrival_plan(),
        policy in batch_policy(),
    ) {
        // No admitted request waits in the open batch past `max_delay_ns`,
        // no batch exceeds `max_batch`, none is empty, and a batch is
        // never formed before its last member arrives.
        let (batches, _, stats) = form_batches(&reqs, &policy);
        for b in &batches {
            prop_assert!(!b.requests.is_empty());
            prop_assert!(b.requests.len() <= policy.max_batch);
            let first = b.requests.first().unwrap().arrival;
            let last = b.requests.last().unwrap().arrival;
            prop_assert!(b.formed_at >= last);
            prop_assert!(
                b.formed_at.as_nanos() - first.as_nanos() <= policy.max_delay_ns,
                "batch {} held its head {} ns > max delay {} ns",
                b.seq,
                b.formed_at.as_nanos() - first.as_nanos(),
                policy.max_delay_ns
            );
            let hist = stats.size_histogram.get(&b.requests.len());
            prop_assert!(hist.is_some());
        }
    }

    #[test]
    fn batcher_queue_never_exceeds_capacity(
        reqs in arrival_plan(),
        policy in batch_policy(),
    ) {
        let (batches, rejected, stats) = form_batches(&reqs, &policy);
        prop_assert!(stats.queue_high_water <= policy.queue_capacity);
        // With capacity ≥ max_batch nothing can ever be rejected: the
        // size trigger drains the queue before it fills.
        if policy.queue_capacity >= policy.max_batch {
            prop_assert!(rejected.is_empty());
        }
        let hist_total: usize = stats.size_histogram.values().sum();
        prop_assert_eq!(hist_total, batches.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn log2_histogram_conserves_observations(values in proptest::collection::vec(0u64..=u64::MAX, 0..200)) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.observe(v);
            // Every value lands in the bucket whose bounds bracket it.
            let i = bucket_index(v);
            prop_assert!(i < LOG2_BUCKETS);
            prop_assert!(bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i),
                "value {} outside bucket {} = [{}, {}]",
                v, i, bucket_lower_bound(i), bucket_upper_bound(i));
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let expect_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum(), expect_sum);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
        if let (Some(&lo), Some(&hi)) = (values.iter().min(), values.iter().max()) {
            prop_assert_eq!(h.min(), lo);
            prop_assert_eq!(h.max(), hi);
        }
    }

    #[test]
    fn log2_histogram_cumulative_is_monotone(values in proptest::collection::vec(0u64..=u64::MAX, 1..200)) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        // Cumulative bucket counts (the Prometheus `le` series) must be
        // nondecreasing and end at the total count.
        let mut cum = 0u64;
        let mut prev = 0u64;
        for &c in h.bucket_counts() {
            cum += c;
            prop_assert!(cum >= prev);
            prev = cum;
        }
        prop_assert_eq!(cum, h.count());
        // Quantiles are monotone in q and bracketed by [min, max].
        let mut last = 0u64;
        for q in [1u64, 250, 500, 750, 950, 999, 1000] {
            let v = h.quantile_milli(q);
            prop_assert!(v >= last, "quantile_milli({}) = {} < previous {}", q, v, last);
            prop_assert!(v <= h.max());
            last = v;
        }
        prop_assert!(h.quantile_milli(1000) >= h.min());
    }

    #[test]
    fn log2_histogram_merge_is_concatenation(
        a in proptest::collection::vec(0u64..=u64::MAX, 0..100),
        b in proptest::collection::vec(0u64..=u64::MAX, 0..100),
    ) {
        let mut ha = Log2Histogram::new();
        for &v in &a { ha.observe(v); }
        let mut hb = Log2Histogram::new();
        for &v in &b { hb.observe(v); }
        let mut hc = Log2Histogram::new();
        for &v in a.iter().chain(&b) { hc.observe(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum(), hc.sum());
        prop_assert_eq!(ha.bucket_counts(), hc.bucket_counts());
        prop_assert_eq!(ha.quantile_milli(950), hc.quantile_milli(950));
    }
}
