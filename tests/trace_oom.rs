//! OOM-path observability: when device allocation fails, the trace must
//! record the failure (an `alloc_oom` instant with the requested size and
//! occupancy at the point of failure) and the `device_mem_in_use` counter's
//! high-water mark must equal the memory subsystem's all-time peak.

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{DeviceConfig, Gpu, TraceKind};
use pipad_models::{ModelKind, TrainingConfig};

fn small_device(capacity: u64) -> Gpu {
    let mut cfg = DeviceConfig::v100();
    cfg.capacity_bytes = capacity;
    Gpu::new(cfg)
}

#[test]
fn failed_alloc_is_traced_with_occupancy() {
    let mut gpu = small_device(1 << 20);
    let a = gpu.alloc(512 << 10).expect("first alloc fits");
    let _b = gpu.alloc(256 << 10).expect("second alloc fits");
    let err = gpu.alloc(512 << 10).expect_err("third alloc must OOM");
    assert_eq!(err.requested, 512 << 10);
    assert_eq!(
        err.label, "alloc",
        "raw Gpu::alloc carries the default label"
    );
    assert!(
        err.to_string().contains("allocating alloc"),
        "Display must attribute the allocation: {err}"
    );

    let ooms: Vec<_> = gpu
        .trace()
        .events()
        .iter()
        .filter(|e| e.name == "alloc_oom")
        .collect();
    assert_eq!(ooms.len(), 1, "exactly one OOM instant");
    let oom = ooms[0];
    assert_eq!(oom.kind, TraceKind::Instant);
    let arg = |name: &str| {
        oom.args
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing arg {name}"))
            .1
            .clone()
    };
    assert_eq!(format!("{:?}", arg("requested")), "U64(524288)");
    assert_eq!(format!("{:?}", arg("in_use")), "U64(786432)");
    assert_eq!(format!("{:?}", arg("capacity")), "U64(1048576)");
    assert_eq!(format!("{:?}", arg("label")), "Str(\"alloc\")");
    // A genuine capacity OOM, not an injected one.
    assert_eq!(format!("{:?}", arg("injected")), "Bool(false)");

    // Freeing after the failure must not disturb the recorded high water.
    gpu.free(a);
    assert_eq!(
        gpu.trace().counter_peak("device_mem_in_use"),
        gpu.mem().peak_ever(),
        "trace high-water must equal the memory subsystem's all-time peak"
    );
    assert_eq!(gpu.mem().peak_ever(), 768 << 10);
}

#[test]
fn training_oom_surfaces_in_trace() {
    // 64 KiB cannot hold even the model weights of a Tiny run.
    let mut gpu = small_device(64 << 10);
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 2,
        preparing_epochs: 1,
        lr: 0.01,
        seed: 7,
    };
    let res = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        64,
        &cfg,
        &PipadConfig::default(),
    );
    assert!(res.is_err(), "64 KiB device must OOM");
    if let Err(pipad_gpu_sim::DeviceFault::Oom(e)) = &res {
        assert!(
            !e.label.is_empty(),
            "a training OOM must attribute the failing allocation"
        );
    } else {
        panic!("expected DeviceFault::Oom, got {res:?}");
    }
    assert!(
        gpu.trace().events().iter().any(|e| e.name == "alloc_oom"),
        "the aborted run must leave an alloc_oom instant in the trace"
    );
    assert_eq!(
        gpu.trace().counter_peak("device_mem_in_use"),
        gpu.mem().peak_ever()
    );
}
