//! Cross-crate integration tests: full training runs spanning every layer
//! of the stack (generator → analyzer → executors → models → autograd →
//! simulated device).

use pipad_repro::baselines::{train_baseline, BaselineKind};
use pipad_repro::dyngraph::{DatasetId, Scale};
use pipad_repro::gpu_sim::{DeviceConfig, Gpu};
use pipad_repro::models::{ModelKind, TrainReport, TrainingConfig};
use pipad_repro::pipad::{train_pipad, PipadConfig};

fn cfg() -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 42,
    }
}

fn run_baseline(kind: BaselineKind, model: ModelKind, id: DatasetId) -> TrainReport {
    let g = id.gen_config(Scale::Tiny).generate();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_baseline(&mut gpu, kind, model, &g, id.hidden_dim().min(16), &cfg()).unwrap()
}

fn run_pipad(model: ModelKind, id: DatasetId) -> TrainReport {
    let g = id.gen_config(Scale::Tiny).generate();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_pipad(
        &mut gpu,
        model,
        &g,
        id.hidden_dim().min(16),
        &cfg(),
        &PipadConfig::default(),
    )
    .unwrap()
}

#[test]
fn every_model_trains_under_every_system() {
    for model in ModelKind::ALL {
        for kind in BaselineKind::ALL {
            let r = run_baseline(kind, model, DatasetId::Covid19England);
            assert!(
                r.losses().iter().all(|l| l.is_finite()),
                "{} x {} produced non-finite loss",
                kind.name(),
                model.name()
            );
        }
        let r = run_pipad(model, DatasetId::Covid19England);
        assert!(r.losses().iter().all(|l| l.is_finite()));
    }
}

#[test]
fn execution_strategy_does_not_change_learning() {
    // The whole point of PiPAD: pure performance optimization. Same seed,
    // same data → same loss trajectory across all five systems.
    for model in [ModelKind::TGcn, ModelKind::EvolveGcn] {
        let reference = run_baseline(BaselineKind::Pygt, model, DatasetId::Pems08).losses();
        for kind in [
            BaselineKind::PygtA,
            BaselineKind::PygtR,
            BaselineKind::PygtG,
        ] {
            let l = run_baseline(kind, model, DatasetId::Pems08).losses();
            for (a, b) in l.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "{} diverged from PyGT on {}: {a} vs {b}",
                    kind.name(),
                    model.name()
                );
            }
        }
        let l = run_pipad(model, DatasetId::Pems08).losses();
        for (a, b) in l.iter().zip(&reference) {
            assert!(
                (a - b).abs() < 5e-3,
                "PiPAD diverged from PyGT on {}: {a} vs {b}",
                model.name()
            );
        }
    }
}

#[test]
fn incremental_optimizations_rank_correctly_on_tgcn() {
    // §5.1's incremental design: each variant should not be slower than its
    // predecessor on T-GCN (where all mechanisms apply).
    let id = DatasetId::Covid19England;
    let pygt = run_baseline(BaselineKind::Pygt, ModelKind::TGcn, id);
    let a = run_baseline(BaselineKind::PygtA, ModelKind::TGcn, id);
    let r = run_baseline(BaselineKind::PygtR, ModelKind::TGcn, id);
    let pipad = run_pipad(ModelKind::TGcn, id);
    assert!(a.steady_epoch_time < pygt.steady_epoch_time, "A < PyGT");
    assert!(r.steady_epoch_time < a.steady_epoch_time, "R < A");
    assert!(
        pipad.steady_epoch_time < pygt.steady_epoch_time,
        "PiPAD < PyGT"
    );
    let speedup = pipad.speedup_over(&pygt);
    assert!(
        speedup > 1.2,
        "PiPAD should clearly beat PyGT on a small dataset: {speedup:.2}x"
    );
}

#[test]
fn pipad_reduces_transfer_volume() {
    let id = DatasetId::Epinions;
    let base = run_baseline(BaselineKind::PygtA, ModelKind::EvolveGcn, id);
    let ours = run_pipad(ModelKind::EvolveGcn, id);
    assert!(
        ours.steady.h2d_bytes < base.steady.h2d_bytes,
        "pipad {} vs baseline {} bytes",
        ours.steady.h2d_bytes,
        base.steady.h2d_bytes
    );
}

#[test]
fn device_memory_is_returned_after_training() {
    let g = DatasetId::Pems08.gen_config(Scale::Tiny).generate();
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let before = gpu.mem().in_use();
    assert_eq!(before, 0);
    train_pipad(
        &mut gpu,
        ModelKind::MpnnLstm,
        &g,
        8,
        &cfg(),
        &PipadConfig::default(),
    )
    .unwrap();
    // Only the model parameters remain resident.
    let params_expected = {
        let mut g2 = Gpu::new(DeviceConfig::v100());
        pipad_repro::models::build_model(&mut g2, ModelKind::MpnnLstm, g.feature_dim(), 8, 42)
            .unwrap();
        g2.mem().in_use()
    };
    assert_eq!(gpu.mem().in_use(), params_expected);
}

#[test]
fn deterministic_across_identical_runs() {
    let a = run_pipad(ModelKind::TGcn, DatasetId::Covid19England);
    let b = run_pipad(ModelKind::TGcn, DatasetId::Covid19England);
    assert_eq!(a.total_time, b.total_time, "simulated time must be exact");
    assert_eq!(a.losses(), b.losses());
    assert_eq!(a.steady.gmem_transactions, b.steady.gmem_transactions);
}

#[test]
fn gespmm_fails_to_help_tgcn_under_reuse() {
    // §5.2: "GE-SpMM targeting the aggregation acceleration turns nearly
    // useless in T-GCN" once reuse removes the aggregations — PyGT-G should
    // be no better than PyGT-R there.
    let id = DatasetId::Pems08;
    let r = run_baseline(BaselineKind::PygtR, ModelKind::TGcn, id);
    let g = run_baseline(BaselineKind::PygtG, ModelKind::TGcn, id);
    let ratio =
        g.steady_epoch_time.as_nanos() as f64 / r.steady_epoch_time.as_nanos().max(1) as f64;
    assert!(
        ratio > 0.95,
        "PyGT-G should gain nothing over PyGT-R on T-GCN, ratio {ratio:.2}"
    );
}
