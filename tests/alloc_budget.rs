//! Allocation-budget gate: steady-state epochs must approach zero-alloc.
//!
//! Installs the counting global allocator (the same one the `repro`
//! binary uses) and trains one model, then asserts the zero-alloc-steady-
//! state contract on the per-epoch `HostAllocStats`:
//!
//! * hot-path heap allocations (buffer-pool misses, each one a real
//!   `Vec` allocation) drop by ≥95% from preparing to steady epochs;
//! * total heap allocator calls per steady epoch stay under a pinned
//!   budget, so an accidentally un-pooled hot path shows up as a diff
//!   here rather than as silent regression.
//!
//! This file holds exactly one test: heap counters are process-global,
//! so the binary must not run unrelated tests concurrently.

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{DeviceConfig, Gpu};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_tensor::{reset_pool, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Generous ceiling on total heap allocator calls per steady epoch for
/// the workload below (~17k observed; includes the simulator's tracing
/// and profiling bookkeeping, which the buffer pool does not cover).
const STEADY_EPOCH_HEAP_ALLOC_BUDGET: u64 = 60_000;

#[test]
fn steady_state_epochs_are_allocation_free_on_the_hot_path() {
    reset_pool();
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 16,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let report = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        16,
        &cfg,
        &PipadConfig::default(),
    )
    .expect("train");

    let mean = |preparing: bool, f: &dyn Fn(&pipad_models::HostAllocStats) -> u64| -> f64 {
        let sel: Vec<u64> = report
            .epochs
            .iter()
            .filter(|e| (e.epoch < cfg.preparing_epochs) == preparing)
            .map(|e| f(&e.alloc))
            .collect();
        assert!(!sel.is_empty());
        sel.iter().sum::<u64>() as f64 / sel.len() as f64
    };

    // The counting allocator is installed, so heap counters must be live.
    for e in &report.epochs {
        assert!(e.alloc.heap_allocs > 0, "epoch {}: allocator not counting", e.epoch);
        assert!(e.alloc.pool_hits > 0, "epoch {}: pool never hit", e.epoch);
    }

    // ≥95% fewer hot-path heap allocations in steady state.
    let prep_misses = mean(true, &|s| s.pool_misses);
    let steady_misses = mean(false, &|s| s.pool_misses);
    assert!(
        steady_misses <= 0.05 * prep_misses,
        "steady epochs still hit the heap on the hot path: \
         {steady_misses:.0} misses/epoch vs {prep_misses:.0} preparing \
         (need >=95% reduction)"
    );

    // Pinned total-allocation budget per steady epoch.
    let steady_allocs = mean(false, &|s| s.heap_allocs);
    assert!(
        steady_allocs <= STEADY_EPOCH_HEAP_ALLOC_BUDGET as f64,
        "steady epoch exceeds the allocation budget: {steady_allocs:.0} > {}",
        STEADY_EPOCH_HEAP_ALLOC_BUDGET
    );
}
