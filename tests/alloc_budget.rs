//! Allocation-budget gate: steady-state epochs must approach zero-alloc.
//!
//! Installs the counting global allocator (the same one the `repro`
//! binary uses) and trains one model, then asserts the zero-alloc-steady-
//! state contract on the per-epoch `HostAllocStats`:
//!
//! * hot-path heap allocations (buffer-pool misses, each one a real
//!   `Vec` allocation) drop by ≥95% from preparing to steady epochs;
//! * total heap allocator calls per steady epoch stay under a pinned
//!   budget, so an accidentally un-pooled hot path shows up as a diff
//!   here rather than as silent regression.
//!
//! This file holds exactly one test: heap counters are process-global,
//! so the binary must not run unrelated tests concurrently.

use pipad::{train_pipad, PipadConfig};
use pipad_ckpt::CheckpointPolicy;
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{DeviceConfig, Gpu};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_tensor::{reset_pool, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Generous ceiling on total heap allocator calls per steady epoch for
/// the workload below (~17k observed; includes the simulator's tracing
/// and profiling bookkeeping, which the buffer pool does not cover).
const STEADY_EPOCH_HEAP_ALLOC_BUDGET: u64 = 60_000;

/// Ceiling for a steady epoch that also writes a checkpoint. Section
/// staging goes through the byte pool with exact size hints, so after the
/// first (preparing-epoch) write warms the pool, a checkpointing epoch
/// costs only file I/O and bookkeeping on top of the plain budget.
const CKPT_STEADY_EPOCH_HEAP_ALLOC_BUDGET: u64 = 70_000;

#[test]
fn steady_state_epochs_are_allocation_free_on_the_hot_path() {
    reset_pool();
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 16,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let report = train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        16,
        &cfg,
        &PipadConfig::default(),
    )
    .expect("train");

    let mean = |preparing: bool, f: &dyn Fn(&pipad_models::HostAllocStats) -> u64| -> f64 {
        let sel: Vec<u64> = report
            .epochs
            .iter()
            .filter(|e| (e.epoch < cfg.preparing_epochs) == preparing)
            .map(|e| f(&e.alloc))
            .collect();
        assert!(!sel.is_empty());
        sel.iter().sum::<u64>() as f64 / sel.len() as f64
    };

    // The counting allocator is installed, so heap counters must be live.
    for e in &report.epochs {
        assert!(
            e.alloc.heap_allocs > 0,
            "epoch {}: allocator not counting",
            e.epoch
        );
        assert!(e.alloc.pool_hits > 0, "epoch {}: pool never hit", e.epoch);
    }

    // ≥95% fewer hot-path heap allocations in steady state.
    let prep_misses = mean(true, &|s| s.pool_misses);
    let steady_misses = mean(false, &|s| s.pool_misses);
    assert!(
        steady_misses <= 0.05 * prep_misses,
        "steady epochs still hit the heap on the hot path: \
         {steady_misses:.0} misses/epoch vs {prep_misses:.0} preparing \
         (need >=95% reduction)"
    );

    // Pinned total-allocation budget per steady epoch.
    let steady_allocs = mean(false, &|s| s.heap_allocs);
    assert!(
        steady_allocs <= STEADY_EPOCH_HEAP_ALLOC_BUDGET as f64,
        "steady epoch exceeds the allocation budget: {steady_allocs:.0} > {}",
        STEADY_EPOCH_HEAP_ALLOC_BUDGET
    );

    // ---- checkpointing epochs --------------------------------------------
    // Same workload with checkpointing every 2 epochs (writes at epochs 1,
    // 3, 5). Checkpoint staging buffers come from the byte pool, so the
    // steady checkpointing epochs must stay within a pinned budget instead
    // of regressing to per-write heap churn.
    reset_pool();
    let ckpt_dir = std::env::temp_dir().join(format!("pipad-alloc-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cfg6 = TrainingConfig {
        epochs: 6,
        ..cfg.clone()
    };
    let pcfg = PipadConfig {
        checkpoint: Some(CheckpointPolicy::new(ckpt_dir.clone(), 2)),
        ..PipadConfig::default()
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let report = train_pipad(&mut gpu, ModelKind::TGcn, &graph, 16, &cfg6, &pcfg)
        .expect("train with checkpoints");
    let ckpt_epochs: Vec<_> = report
        .epochs
        .iter()
        .filter(|e| e.epoch >= cfg6.preparing_epochs && (e.epoch + 1) % 2 == 0)
        .collect();
    assert!(
        !ckpt_epochs.is_empty(),
        "schedule produced no steady checkpointing epoch"
    );
    for e in &ckpt_epochs {
        assert!(
            e.alloc.heap_allocs <= CKPT_STEADY_EPOCH_HEAP_ALLOC_BUDGET,
            "checkpointing epoch {} exceeds the allocation budget: {} > {}",
            e.epoch,
            e.alloc.heap_allocs,
            CKPT_STEADY_EPOCH_HEAP_ALLOC_BUDGET
        );
    }
    std::fs::remove_dir_all(&ckpt_dir).expect("cleanup checkpoints");
}
