//! Differential equivalence gate for multi-GPU data-parallel training.
//!
//! The virtual-shard design pins the vertex partition (and with it every
//! floating-point reduction order) independently of the device count, so
//! distributing training must be a *pure placement change*: for each of
//! the three paper models, the per-epoch loss trajectory of an `n_gpus ∈
//! {2, 4}` run must equal the single-GPU run **bit for bit** — with the
//! host buffer pool on or off — and the per-device Chrome traces must be
//! byte-identical across host-pool thread counts.

use pipad::{train_data_parallel, MultiGpuConfig, MultiTrainReport};
use pipad_dyngraph::{DatasetId, DynamicGraph, Scale};
use pipad_gpu_sim::validate_json;
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;
use pipad_tensor::{reset_pool, with_pool_enabled};

fn graph() -> DynamicGraph {
    DatasetId::Covid19England.gen_config(Scale::Tiny).generate()
}

fn cfg() -> TrainingConfig {
    TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    }
}

fn run(model: ModelKind, g: &DynamicGraph, n_gpus: usize) -> MultiTrainReport {
    train_data_parallel(
        model,
        g,
        8,
        &cfg(),
        &MultiGpuConfig {
            n_gpus,
            ..Default::default()
        },
    )
    .expect("train")
}

fn loss_bits(r: &MultiTrainReport) -> Vec<u32> {
    r.epochs.iter().map(|e| e.mean_loss.to_bits()).collect()
}

#[test]
fn device_count_and_pool_do_not_change_losses() {
    let g = graph();
    for model in ModelKind::ALL {
        reset_pool();
        let base = with_pool_enabled(true, || loss_bits(&run(model, &g, 1)));
        assert!(
            base.iter().any(|&b| f32::from_bits(b).is_finite()),
            "{model:?}: reference run produced no finite losses"
        );
        for n_gpus in [2usize, 4] {
            for pool_on in [true, false] {
                reset_pool();
                let multi = with_pool_enabled(pool_on, || loss_bits(&run(model, &g, n_gpus)));
                assert_eq!(
                    base, multi,
                    "{model:?}: losses diverged (n_gpus={n_gpus}, pool_on={pool_on})"
                );
            }
        }
    }
}

#[test]
fn per_device_traces_are_thread_invariant() {
    let g = graph();
    for model in ModelKind::ALL {
        reset_pool();
        let base = with_threads(1, || run(model, &g, 2));
        assert_eq!(base.traces.len(), 2);
        for t in &base.traces {
            validate_json(t).expect("well-formed per-device trace");
        }
        reset_pool();
        let four = with_threads(4, || run(model, &g, 2));
        assert_eq!(
            base.traces, four.traces,
            "{model:?}: per-device traces diverged across thread counts"
        );
        assert_eq!(
            loss_bits(&base),
            loss_bits(&four),
            "{model:?}: losses diverged across thread counts"
        );
    }
}
