//! Metrics-layer gates: golden exports, thread/pool invariance and the
//! committed regression-sentinel baseline.
//!
//! Three layers of pinning:
//!
//! 1. a tiny-scale `repro profile` run whose three exports (JSON,
//!    Prometheus text, human table) are checked byte-for-byte against
//!    `tests/golden/profile_tiny.{json,prom,txt}` — any change to metric
//!    naming, label ordering, bucket layout or number formatting shows up
//!    as a diff of those files (rerun with `UPDATE_GOLDEN=1` when the
//!    change is intentional);
//! 2. the same run re-measured under 1-/4-thread host pools and with the
//!    host buffer pool disabled must produce byte-identical exports
//!    (asserted inside `profile::run`);
//! 3. the committed sentinel baseline
//!    (`tests/golden/profile_baseline.json`) must accept a fresh run — the
//!    same comparison `scripts/check.sh` makes — so a perf regression
//!    fails `cargo test` before it ever reaches the shell gate.

use pipad_bench::profile;
use pipad_bench::RunScale;
use pipad_gpu_sim::validate_json;

fn check_golden(name: &str, got: &str, want: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    assert_eq!(
        got, want,
        "profile export diverged from tests/golden/{name}; if the change is \
         intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn profile_exports_match_goldens_and_survive_thread_and_pool_sweeps() {
    // `run` measures under the default pool, 1 thread, 4 threads and with
    // the buffer pool disabled, asserting byte-identity internally.
    let art = profile::run(RunScale::Tiny);
    validate_json(&art.json).expect("profile JSON is well-formed");

    check_golden(
        "profile_tiny.json",
        &art.json,
        include_str!("golden/profile_tiny.json"),
    );
    check_golden(
        "profile_tiny.prom",
        &art.prom,
        include_str!("golden/profile_tiny.prom"),
    );
    check_golden(
        "profile_tiny.txt",
        &art.table,
        include_str!("golden/profile_tiny.txt"),
    );

    // The committed sentinel baseline must accept this run (the check.sh
    // perf gate, replayed in-process).
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/profile_baseline.json"
        );
        std::fs::write(path, art.render_baseline()).expect("write baseline");
    } else {
        let failures = art
            .check_baseline(include_str!("golden/profile_baseline.json"))
            .expect("committed baseline parses");
        assert!(
            failures.is_empty(),
            "sentinel baseline violations:\n{}",
            failures.join("\n")
        );
    }
}

#[test]
fn profile_prom_export_is_prometheus_shaped() {
    let art = profile::measure(RunScale::Tiny);
    // Every family is typed before its first sample, and histogram series
    // end with the +Inf bucket.
    assert!(art
        .prom
        .contains("# TYPE pipad_overlap_fraction_milli gauge"));
    assert!(art.prom.contains("# TYPE pipad_kernel_ns histogram"));
    assert!(art.prom.contains("le=\"+Inf\""));
    assert!(art.prom.contains("pipad_serve_latency_ns_count"));
    // The table export carries all three sections.
    for section in ["== counters ==", "== gauges ==", "== histograms =="] {
        assert!(art.table.contains(section), "table missing {section}");
    }
}
