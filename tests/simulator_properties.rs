//! Integration-level properties of the simulated device: timeline
//! causality, stream/event semantics, profiler window consistency and the
//! §3.2 access-shape laws, exercised through the public APIs the trainers
//! use.

use pipad_repro::gpu_sim::{
    feature_row_access, DeviceConfig, Gpu, KernelCategory, KernelCost, SimNanos, VectorWidth,
};
use pipad_repro::pipad::{
    DynamicTuner, FrameProfile, GraphAnalyzer, OfflineTable, PartitionCatalog,
};
use proptest::prelude::*;

fn kernel(flops: u64, txns: u64) -> KernelCost {
    KernelCost::new("k", KernelCategory::Other)
        .flops(flops)
        .gmem(txns / 4 + 1, txns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn launches_never_go_back_in_time(work in proptest::collection::vec((1u64..1_000_000, 1u64..100_000), 1..40)) {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s = gpu.default_stream();
        let mut last = SimNanos::ZERO;
        for (flops, txns) in work {
            let e = gpu.launch(s, kernel(flops, txns));
            prop_assert!(e.time() > last, "timeline must advance");
            last = e.time();
        }
        // the profiler's samples are ordered and non-overlapping on the
        // compute lane
        let samples = gpu.profiler().samples();
        for w in samples.windows(2) {
            prop_assert!(w[1].start >= w[0].end);
        }
    }

    #[test]
    fn event_sync_is_a_lower_bound(bytes in 1u64..10_000_000) {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let a = gpu.default_stream();
        let b = gpu.create_stream();
        let t = gpu.h2d(b, bytes, true);
        let ev = gpu.record_event(b);
        gpu.wait_event(a, ev);
        let k = gpu.launch(a, kernel(1000, 10));
        prop_assert!(k.time() > t.time());
    }

    #[test]
    fn window_totals_are_additive(n1 in 1usize..20, n2 in 1usize..20) {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s = gpu.default_stream();
        let start = gpu.profiler().snapshot();
        for _ in 0..n1 {
            gpu.launch(s, kernel(5000, 100));
        }
        let mid = gpu.profiler().snapshot();
        for _ in 0..n2 {
            gpu.launch(s, kernel(5000, 100));
        }
        let all = gpu.profiler().window(start);
        let first = gpu.profiler().between(start, mid);
        let second = gpu.profiler().window(mid);
        prop_assert_eq!(all.kernel_launches, first.kernel_launches + second.kernel_launches);
        prop_assert_eq!(
            all.gmem_transactions,
            first.gmem_transactions + second.gmem_transactions
        );
        prop_assert_eq!(
            all.compute_total.as_nanos(),
            first.compute_total.as_nanos() + second.compute_total.as_nanos()
        );
    }

    #[test]
    fn access_shape_laws(dim in 1u32..512) {
        let cfg = DeviceConfig::v100();
        let a = feature_row_access(&cfg, dim, VectorWidth::W1);
        // moved bytes never below useful bytes; both multiples of rules
        prop_assert!(a.moved_bytes >= a.useful_bytes);
        prop_assert_eq!(a.moved_bytes % cfg.transaction_bytes as u64, 0);
        prop_assert!(a.requests >= 1 && a.transactions >= 1);
        // §3.2 knees
        if dim <= 8 {
            prop_assert_eq!(a.transactions, 1);
        }
        if dim <= 32 {
            prop_assert_eq!(a.requests, 1);
        }
        // vector loads only reduce requests
        let v4 = feature_row_access(&cfg, dim, VectorWidth::W4);
        prop_assert!(v4.requests <= a.requests);
        prop_assert_eq!(v4.transactions, a.transactions);
    }

    #[test]
    fn transfers_respect_bandwidth_ordering(bytes in 1_000u64..50_000_000) {
        // pinned is never slower than pageable for the same payload
        let mut g1 = Gpu::new(DeviceConfig::v100());
        let s1 = g1.default_stream();
        let pinned = g1.h2d(s1, bytes, true).time();
        let mut g2 = Gpu::new(DeviceConfig::v100());
        let s2 = g2.default_stream();
        let pageable = g2.h2d(s2, bytes, false).time();
        prop_assert!(pinned <= pageable);
    }

    #[test]
    fn memory_accounting_is_exact(sizes in proptest::collection::vec(1u64..1_000_000, 1..30)) {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let total: u64 = sizes.iter().sum();
        let bufs: Vec<_> = sizes.iter().map(|&b| gpu.alloc(b).unwrap()).collect();
        prop_assert_eq!(gpu.mem().in_use(), total);
        prop_assert_eq!(gpu.mem().peak(), total);
        for b in bufs {
            gpu.free(b);
        }
        prop_assert_eq!(gpu.mem().in_use(), 0);
        prop_assert_eq!(gpu.mem().peak(), total);
    }
}

#[test]
fn graph_scope_only_changes_overheads() {
    let run = |graphed: bool| {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s = gpu.default_stream();
        if graphed {
            gpu.graph_scope(s, |gpu| {
                for _ in 0..30 {
                    gpu.launch(s, kernel(100_000, 1000));
                }
            });
        } else {
            for _ in 0..30 {
                gpu.launch(s, kernel(100_000, 1000));
            }
        }
        let b = gpu.profiler().full();
        (gpu.now(), b.compute_total, b.gmem_transactions)
    };
    let (t_graph, busy_graph, txn_graph) = run(true);
    let (t_plain, busy_plain, txn_plain) = run(false);
    assert!(t_graph < t_plain, "graph mode amortizes launches");
    assert_eq!(busy_graph, busy_plain, "kernel busy time identical");
    assert_eq!(txn_graph, txn_plain, "traffic identical");
}

// ---- trace layer properties -----------------------------------------------
//
// The structured trace recorder (gpu_sim::trace) observes the same timeline
// the profiler accounts for; these properties pin the invariants the Chrome
// export relies on: spans are well-formed, one lane never overlaps itself,
// export order is nondecreasing in time, and per-kernel span durations sum
// to the profiler's independent totals.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_spans_are_causal_and_consistent(
        work in proptest::collection::vec(
            (1u64..500_000, 1u64..50_000, 0usize..2, 0usize..3), 1..30)
    ) {
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        for (flops, txns, which, op) in work {
            let s = if which == 0 { s0 } else { s1 };
            match op {
                0 => {
                    gpu.launch(s, kernel(flops, txns));
                }
                1 => {
                    gpu.h2d(s, txns + 1, true);
                }
                _ => {
                    gpu.d2h(s, txns + 1, false);
                }
            }
        }
        gpu.synchronize();

        // every span ends at or after it begins
        for e in gpu.trace().events() {
            prop_assert!(e.end() >= e.ts);
        }
        // export order is nondecreasing in time
        let sorted = gpu.trace().sorted();
        for w in sorted.windows(2) {
            prop_assert!(w[1].ts >= w[0].ts, "export order regressed in time");
        }
        // spans that share a lane never overlap (kernels serialize on the
        // compute unit, copies serialize per engine)
        let mut by_lane: std::collections::BTreeMap<u64, Vec<(SimNanos, SimNanos)>> =
            std::collections::BTreeMap::new();
        for e in gpu.trace().events() {
            if e.kind.is_span() {
                by_lane.entry(e.lane.tid()).or_default().push((e.ts, e.end()));
            }
        }
        for spans in by_lane.values_mut() {
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "spans overlap on one lane: {w:?}");
            }
        }
        // kernel/memcpy span totals equal the profiler's accounting
        let consistency = gpu.profiler().consistency_check(gpu.trace());
        prop_assert!(consistency.is_ok(), "{consistency:?}");
    }

    #[test]
    fn trace_export_is_a_pure_function_of_the_workload(
        work in proptest::collection::vec((1u64..200_000, 1u64..20_000), 1..15)
    ) {
        let run = |work: &[(u64, u64)]| {
            let mut gpu = Gpu::new(DeviceConfig::v100());
            let s = gpu.default_stream();
            for &(flops, txns) in work {
                gpu.launch(s, kernel(flops, txns));
            }
            gpu.synchronize();
            pipad_repro::gpu_sim::export_chrome_trace(gpu.trace(), 0)
        };
        let a = run(&work);
        let b = run(&work);
        prop_assert_eq!(a, b);
    }
}

// ---- tuner under memory pressure ------------------------------------------
//
// The OOM-recovery ladder shrinks `S_per` one tuner step at a time
// (`DynamicTuner::downshift`); these properties pin the invariants the
// trainer relies on: a decision never exceeds the memory-derived upper
// bound `U = budget / one-snapshot-peak`, and the downshift chain from any
// decision is strictly decreasing until it reaches (and then stays at) 1 —
// so every rung of the ladder still respects the bound the decision did.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tuner_decisions_and_downshifts_respect_the_memory_bound(
        peak in 1_000u64..8_000_000,
        budget in 1_000u64..32_000_000,
        compute_us in 100u64..100_000,
    ) {
        let graph = pipad_repro::dyngraph::DatasetId::Covid19England
            .gen_config(pipad_repro::dyngraph::Scale::Tiny)
            .generate();
        let mut gpu = Gpu::new(DeviceConfig::v100());
        let mut host_cursor = SimNanos::ZERO;
        let analyzer = GraphAnalyzer::run(&mut gpu, &graph, &mut host_cursor);
        let catalog = PartitionCatalog::build(&mut gpu, &analyzer, &mut host_cursor);

        let tuner = DynamicTuner::new(OfflineTable::default(), budget, 16_000, 16);
        let profile = FrameProfile {
            peak_mem_one_snapshot: peak,
            compute_time: SimNanos::from_nanos(compute_us * 1_000),
            transfer_bytes: 0,
        };
        let window = 8usize;
        let d = tuner.decide(&profile, &catalog, 0, window);
        let bound = ((budget / peak) as usize).max(1);
        prop_assert!(d.s_per >= 1);
        prop_assert!(
            d.s_per <= bound,
            "decision {} exceeds memory bound {} (budget {budget}, peak {peak})",
            d.s_per, bound
        );
        prop_assert_eq!(d.memory_bound, bound);
        prop_assert!(d.s_per <= window);

        // After an OOM, the trainer walks the decision down the ladder:
        // every rung is strictly smaller (hence still within the bound)
        // until the floor, which maps to itself as the give-up signal.
        let mut s = d.s_per;
        let mut steps = 0;
        while s > 1 {
            let down = DynamicTuner::downshift(s);
            prop_assert!(down < s, "downshift must strictly decrease ({s} -> {down})");
            prop_assert!(down <= bound, "downshifted {down} escaped the bound {bound}");
            s = down;
            steps += 1;
            prop_assert!(steps <= 4, "ladder 8->4->2->1 has at most 3 rungs");
        }
        prop_assert_eq!(DynamicTuner::downshift(1), 1, "the floor maps to itself");
    }
}
