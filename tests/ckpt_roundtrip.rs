//! Property suite for the `pipad-ckpt` container and codec.
//!
//! Three families of properties back the checkpoint subsystem's safety
//! story:
//!
//! * **round-trip byte-identity** — arbitrary section payloads and typed
//!   values survive encode → decode unchanged, and re-encoding the decoded
//!   state reproduces the original file byte for byte (the foundation of
//!   the kill-and-resume bit-identity contract);
//! * **corruption detection** — truncating the file anywhere or flipping
//!   any single bit yields a *typed* [`CkptError`], never a panic and
//!   never a silently-accepted file;
//! * **garbage tolerance** — `Checkpoint::from_bytes` and the bounds-
//!   checked [`Reader`] reject arbitrary byte soup with typed errors.

use pipad_repro::ckpt::codec::{
    get_matrix, put_bool, put_f32, put_f64, put_matrix, put_str, put_u32, put_u64, Reader,
};
use pipad_repro::ckpt::{Checkpoint, CheckpointWriter, CkptError};
use pipad_repro::tensor::Matrix;
use proptest::prelude::*;

/// Strategy: an arbitrary payload of up to `max` bytes.
fn payload(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u32..256, 0..max)
        .prop_map(|v| v.into_iter().map(|b| b as u8).collect())
}

/// Strategy: a short ASCII section/string name (possibly empty).
fn name(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..26, 0..max)
        .prop_map(|v| v.into_iter().map(|c| (b'a' + c as u8) as char).collect())
}

/// Build a writer holding `sections`. Names get a `<index>_` prefix —
/// generated names are all-letter, so prefixed names cannot collide and
/// decoded lookups are unambiguous.
fn writer_with(sections: &[(String, Vec<u8>)]) -> CheckpointWriter {
    let mut w = CheckpointWriter::new();
    for (i, (n, p)) in sections.iter().enumerate() {
        w.section(&format!("{i}_{n}")).extend_from_slice(p);
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn container_round_trips_and_reencodes_byte_identically(
        sections in proptest::collection::vec((name(12), payload(120)), 1..6)
    ) {
        let bytes = writer_with(&sections).encode();
        let ckpt = Checkpoint::from_bytes(bytes.clone()).expect("valid file must decode");
        for (i, (n, p)) in sections.iter().enumerate() {
            prop_assert_eq!(ckpt.section(&format!("{i}_{n}")).unwrap(), &p[..]);
        }
        prop_assert_eq!(ckpt.section_names().count(), sections.len());
        // Re-encoding the decoded sections reproduces the file exactly.
        let again = writer_with(&sections).encode();
        prop_assert_eq!(bytes, again);
    }

    #[test]
    fn truncation_anywhere_yields_typed_error(
        sections in proptest::collection::vec((name(8), payload(64)), 1..4),
        cut_salt in 0u64..10_000
    ) {
        let bytes = writer_with(&sections).encode();
        let cut = (cut_salt as usize) % bytes.len();
        let err = match Checkpoint::from_bytes(bytes[..cut].to_vec()) {
            Ok(_) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("truncated file decoded at cut {cut}"))),
            Err(e) => e,
        };
        // Short cuts fail the header reads; longer ones leave a plausible
        // header whose (now displaced) trailing "file CRC" cannot match.
        prop_assert!(matches!(
            err,
            CkptError::Truncated { .. }
                | CkptError::BadMagic
                | CkptError::BadVersion(_)
                | CkptError::FileCrc
        ), "unexpected error for cut at {}: {}", cut, err);
    }

    #[test]
    fn single_bit_flip_anywhere_yields_typed_error(
        sections in proptest::collection::vec((name(8), payload(64)), 1..4),
        pos_salt in 0u64..100_000,
        bit in 0u32..8
    ) {
        let mut bytes = writer_with(&sections).encode();
        let pos = (pos_salt as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        let res = Checkpoint::from_bytes(bytes);
        prop_assert!(res.is_err(), "bit flip at {}.{} went undetected", pos, bit);
    }

    #[test]
    fn garbage_bytes_never_panic(soup in payload(256)) {
        // Typed rejection, whatever the bytes happen to spell.
        prop_assert!(Checkpoint::from_bytes(soup.clone()).is_err());
        let mut r = Reader::new(&soup);
        // A plausible decode sequence over arbitrary bytes either yields
        // values or a typed error — then the residue check is also typed.
        let _ = r.get_u64().and_then(|_| r.get_str().map(str::len));
        let _ = r.finish();
    }

    #[test]
    fn typed_values_round_trip_bit_exactly(
        a in 0u32..u32::MAX, b in 0u64..u64::MAX, f_bits in 0u32..u32::MAX,
        d_bits in 0u64..u64::MAX, flag in 0u32..2, s in name(24)
    ) {
        // Floats travel as raw bits, so NaN payloads and -0.0 are fair game.
        let f = f32::from_bits(f_bits);
        let d = f64::from_bits(d_bits);
        let mut buf = Vec::new();
        put_u32(&mut buf, a);
        put_u64(&mut buf, b);
        put_f32(&mut buf, f);
        put_f64(&mut buf, d);
        put_bool(&mut buf, flag == 1);
        put_str(&mut buf, &s);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.get_u32().unwrap(), a);
        prop_assert_eq!(r.get_u64().unwrap(), b);
        prop_assert_eq!(r.get_f32().unwrap().to_bits(), f.to_bits());
        prop_assert_eq!(r.get_f64().unwrap().to_bits(), d.to_bits());
        prop_assert_eq!(r.get_bool().unwrap(), flag == 1);
        prop_assert_eq!(r.get_str().unwrap(), s.as_str());
        r.finish().unwrap();
    }

    #[test]
    fn matrices_round_trip_bit_exactly(
        rows in 1usize..12, cols in 1usize..12, salt in 0u64..1000
    ) {
        let m = Matrix::from_fn(rows, cols, |r, c| {
            if (r + c + salt as usize).is_multiple_of(7) {
                f32::NAN
            } else {
                ((r * 31 + c * 7) as f32).mul_add(0.125, salt as f32 * 0.01) - 1.0
            }
        });
        let mut buf = Vec::new();
        put_matrix(&mut buf, &m);
        let mut r = Reader::new(&buf);
        let back = get_matrix(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back.shape(), m.shape());
        for rr in 0..rows {
            for cc in 0..cols {
                prop_assert_eq!(back[(rr, cc)].to_bits(), m[(rr, cc)].to_bits());
            }
        }
        back.recycle();
        m.recycle();
    }
}
