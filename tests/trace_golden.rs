//! Golden-trace regression and trace-determinism gates.
//!
//! Two layers of pinning:
//!
//! 1. a hand-driven device workload whose exported Chrome-trace JSON is
//!    checked byte-for-byte against `tests/golden/trace_tiny.json` — any
//!    change to event naming, ordering, number formatting or the export
//!    envelope shows up as a diff of that file;
//! 2. a full `train_pipad` run whose exported trace must be byte-identical
//!    across repeated runs and across host-pool thread counts (the trace is
//!    a pure function of the simulated clock, which the host-parallel layer
//!    does not perturb);
//! 3. an online-serving run over a hand-built micro graph whose exported
//!    trace is pinned against `tests/golden/serve_tiny.json` — the
//!    `enqueue`/`batch_form`/`serve_forward` span schema and the serving
//!    clock itself cannot drift silently.

use pipad::{train_pipad, PipadConfig};
use pipad_ckpt::CheckpointPolicy;
use pipad_dyngraph::{DatasetId, DynamicGraph, Scale, Snapshot};
use pipad_gpu_sim::{
    export_chrome_trace, trace_text_summary, validate_json, DeviceConfig, Gpu, KernelCategory,
    KernelCost, SimNanos,
};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;
use pipad_repro::serve::{
    serve_open_loop, BatchPolicy, EngineConfig, RequestGenConfig, ServeEngine, ServeSimConfig,
};
use pipad_repro::sparse::Csr;
use pipad_repro::tensor::Matrix;

/// A miniature pipelined step: pinned upload on a copy stream, dependent
/// kernel on the default stream, pageable readback, one host-side op.
fn tiny_workload() -> Gpu {
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    let buf = gpu.alloc(1 << 20).expect("alloc");
    gpu.h2d(copy, 1 << 20, true);
    let staged = gpu.record_event(copy);
    gpu.wait_event(compute, staged);
    gpu.launch(
        compute,
        KernelCost::new("axpy", KernelCategory::Elementwise)
            .flops(1 << 18)
            .gmem(1 << 13, 1 << 13)
            .uniform_blocks(64, 4096),
    );
    let (h0, _) = gpu.host_op("loss_host", gpu.now(), SimNanos::from_micros(3));
    let _ = h0;
    gpu.d2h(compute, 1 << 10, false);
    gpu.free(buf);
    gpu.synchronize();
    gpu
}

#[test]
fn tiny_trace_matches_golden() {
    let gpu = tiny_workload();
    let got = export_chrome_trace(gpu.trace(), 0);
    validate_json(&got).expect("well-formed");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_tiny.json");
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = include_str!("golden/trace_tiny.json");
    assert_eq!(
        got, want,
        "exported trace diverged from tests/golden/trace_tiny.json; if the \
         change is intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn tiny_trace_summary_is_stable() {
    let gpu = tiny_workload();
    let a = trace_text_summary(gpu.trace());
    let b = trace_text_summary(tiny_workload().trace());
    assert_eq!(a, b);
    assert!(a.contains("device_mem_in_use"), "{a}");
}

fn pipeline_trace() -> String {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        8,
        &cfg,
        &PipadConfig::default(),
    )
    .expect("train");
    gpu.profiler()
        .consistency_check(gpu.trace())
        .expect("trace agrees with profiler");
    export_chrome_trace(gpu.trace(), 0)
}

/// A 4-vertex path graph with one time-varying chord, 6 snapshots of
/// 2-dim features: large enough to exercise batching, reuse and frame
/// advancement, small enough to keep the golden export reviewable.
fn micro_graph() -> DynamicGraph {
    let snaps = (0..6)
        .map(|t| {
            let mut edges = vec![(0u32, 1u32), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)];
            let chord = (t % 3) as u32;
            if chord != 3 {
                edges.push((chord, 3));
                edges.push((3, chord));
            }
            let features = Matrix::from_fn(4, 2, |r, c| {
                (r * 2 + c) as f32 * 0.25 + t as f32 * 0.125 - 0.5
            });
            Snapshot::new(Csr::from_edges(4, 4, &edges), features)
        })
        .collect();
    DynamicGraph::new("micro-serve", snaps)
}

/// Train the micro graph with checkpointing, then serve a short bursty
/// request plan with a deliberately tight admission queue (capacity below
/// `max_batch`, so the golden file also pins the rejected-request
/// `enqueue` schema). Returns the serving device.
fn micro_serve_gpu(dir: &std::path::Path) -> Gpu {
    let graph = micro_graph();
    let cfg = TrainingConfig {
        window: 2,
        epochs: 3,
        preparing_epochs: 1,
        lr: 0.01,
        seed: 5,
    };
    let _ = std::fs::remove_dir_all(dir);
    let mut tg = Gpu::new(DeviceConfig::v100());
    let pcfg = PipadConfig {
        checkpoint: Some(CheckpointPolicy::new(dir.to_path_buf(), 2)),
        ..PipadConfig::default()
    };
    train_pipad(&mut tg, ModelKind::TGcn, &graph, 4, &cfg, &pcfg).expect("train micro graph");

    let mut gpu = Gpu::new(DeviceConfig::v100());
    let ecfg = EngineConfig {
        hidden: 4,
        ..EngineConfig::default()
    };
    let mut engine = ServeEngine::from_latest(&mut gpu, dir, ModelKind::TGcn, &graph, &cfg, &ecfg)
        .expect("restore micro checkpoint");
    let scfg = ServeSimConfig {
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ns: 250_000,
            queue_capacity: 2,
        },
        gen: RequestGenConfig {
            seed: 2,
            n_requests: 6,
            mean_interarrival_ns: 120_000,
            max_targets: 2,
            snapshot_period_ns: 300_000,
        },
    };
    let report = serve_open_loop(&mut gpu, &mut engine, &scfg).expect("serve micro graph");
    assert!(report.served > 0, "golden workload served nothing");
    let _ = std::fs::remove_dir_all(dir);
    gpu
}

#[test]
fn serve_trace_matches_golden() {
    let dir = std::env::temp_dir().join(format!("pipad-serve-golden-{}", std::process::id()));
    let gpu = micro_serve_gpu(&dir);
    let got = export_chrome_trace(gpu.trace(), 0);
    validate_json(&got).expect("well-formed");
    for needle in ["enqueue", "batch_form", "serve_forward"] {
        assert!(got.contains(needle), "serve trace lost its {needle} events");
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_tiny.json");
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = include_str!("golden/serve_tiny.json");
    assert_eq!(
        got, want,
        "serving trace diverged from tests/golden/serve_tiny.json; if the \
         change is intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn serve_trace_is_byte_identical_across_threads() {
    let dir = std::env::temp_dir().join(format!("pipad-serve-golden-t-{}", std::process::id()));
    let base = export_chrome_trace(micro_serve_gpu(&dir).trace(), 0);
    for threads in [1usize, 4] {
        let under_pool = with_threads(threads, || {
            export_chrome_trace(micro_serve_gpu(&dir).trace(), 0)
        });
        assert_eq!(
            base, under_pool,
            "serving trace diverged under a {threads}-thread host pool"
        );
    }
}

#[test]
fn pipeline_trace_is_byte_identical_across_runs_and_threads() {
    let base = pipeline_trace();
    validate_json(&base).expect("well-formed");
    assert_eq!(base, pipeline_trace(), "same-process rerun diverged");
    for threads in [1usize, 4] {
        let under_pool = with_threads(threads, pipeline_trace);
        assert_eq!(
            base, under_pool,
            "trace diverged under a {threads}-thread host pool"
        );
    }
}
