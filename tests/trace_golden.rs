//! Golden-trace regression and trace-determinism gates.
//!
//! Two layers of pinning:
//!
//! 1. a hand-driven device workload whose exported Chrome-trace JSON is
//!    checked byte-for-byte against `tests/golden/trace_tiny.json` — any
//!    change to event naming, ordering, number formatting or the export
//!    envelope shows up as a diff of that file;
//! 2. a full `train_pipad` run whose exported trace must be byte-identical
//!    across repeated runs and across host-pool thread counts (the trace is
//!    a pure function of the simulated clock, which the host-parallel layer
//!    does not perturb).

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{
    export_chrome_trace, trace_text_summary, validate_json, DeviceConfig, Gpu, KernelCategory,
    KernelCost, SimNanos,
};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;

/// A miniature pipelined step: pinned upload on a copy stream, dependent
/// kernel on the default stream, pageable readback, one host-side op.
fn tiny_workload() -> Gpu {
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let compute = gpu.default_stream();
    let copy = gpu.create_stream();
    let buf = gpu.alloc(1 << 20).expect("alloc");
    gpu.h2d(copy, 1 << 20, true);
    let staged = gpu.record_event(copy);
    gpu.wait_event(compute, staged);
    gpu.launch(
        compute,
        KernelCost::new("axpy", KernelCategory::Elementwise)
            .flops(1 << 18)
            .gmem(1 << 13, 1 << 13)
            .uniform_blocks(64, 4096),
    );
    let (h0, _) = gpu.host_op("loss_host", gpu.now(), SimNanos::from_micros(3));
    let _ = h0;
    gpu.d2h(compute, 1 << 10, false);
    gpu.free(buf);
    gpu.synchronize();
    gpu
}

#[test]
fn tiny_trace_matches_golden() {
    let gpu = tiny_workload();
    let got = export_chrome_trace(gpu.trace(), 0);
    validate_json(&got).expect("well-formed");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_tiny.json");
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = include_str!("golden/trace_tiny.json");
    assert_eq!(
        got, want,
        "exported trace diverged from tests/golden/trace_tiny.json; if the \
         change is intentional, rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn tiny_trace_summary_is_stable() {
    let gpu = tiny_workload();
    let a = trace_text_summary(gpu.trace());
    let b = trace_text_summary(tiny_workload().trace());
    assert_eq!(a, b);
    assert!(a.contains("device_mem_in_use"), "{a}");
}

fn pipeline_trace() -> String {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    train_pipad(
        &mut gpu,
        ModelKind::TGcn,
        &graph,
        8,
        &cfg,
        &PipadConfig::default(),
    )
    .expect("train");
    gpu.profiler()
        .consistency_check(gpu.trace())
        .expect("trace agrees with profiler");
    export_chrome_trace(gpu.trace(), 0)
}

#[test]
fn pipeline_trace_is_byte_identical_across_runs_and_threads() {
    let base = pipeline_trace();
    validate_json(&base).expect("well-formed");
    assert_eq!(base, pipeline_trace(), "same-process rerun diverged");
    for threads in [1usize, 4] {
        let under_pool = with_threads(threads, pipeline_trace);
        assert_eq!(
            base, under_pool,
            "trace diverged under a {threads}-thread host pool"
        );
    }
}
