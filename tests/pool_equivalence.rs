//! Buffer-pool equivalence gate: the host buffer pool is a pure
//! allocation-strategy change. For every paper model, training must
//! produce bit-identical per-epoch losses and a byte-identical exported
//! Chrome trace with the pool on or off (`PIPAD_NO_POOL`'s in-process
//! equivalent), at every host-pool thread count.

use pipad::{train_pipad, PipadConfig};
use pipad_dyngraph::{DatasetId, Scale};
use pipad_gpu_sim::{export_chrome_trace, validate_json, DeviceConfig, Gpu};
use pipad_models::{ModelKind, TrainingConfig};
use pipad_pool::with_threads;
use pipad_tensor::{reset_pool, with_pool_enabled};

/// One training run: per-epoch losses (as exact bit patterns) plus the
/// exported trace JSON.
fn run_once(model: ModelKind) -> (Vec<u32>, String) {
    let graph = DatasetId::Covid19England.gen_config(Scale::Tiny).generate();
    let cfg = TrainingConfig {
        window: 8,
        epochs: 4,
        preparing_epochs: 2,
        lr: 0.01,
        seed: 7,
    };
    let mut gpu = Gpu::new(DeviceConfig::v100());
    let report =
        train_pipad(&mut gpu, model, &graph, 8, &cfg, &PipadConfig::default()).expect("train");
    let losses = report.losses().iter().map(|l| l.to_bits()).collect();
    (losses, export_chrome_trace(gpu.trace(), 0))
}

#[test]
fn pool_on_off_and_thread_count_do_not_change_results() {
    for model in ModelKind::ALL {
        // Cold pool, pool enabled — the reference run.
        reset_pool();
        let (base_losses, base_trace) = with_pool_enabled(true, || run_once(model));
        validate_json(&base_trace).expect("well-formed trace");
        assert!(
            base_losses.iter().any(|&b| f32::from_bits(b).is_finite()),
            "{model:?}: reference run produced no finite losses"
        );

        // Warm pool (recycled buffers from the previous run) must not
        // change values either — recycled memory is fully overwritten.
        let (warm_losses, warm_trace) = with_pool_enabled(true, || run_once(model));
        assert_eq!(
            base_losses, warm_losses,
            "{model:?}: warm pool changed losses"
        );
        assert_eq!(base_trace, warm_trace, "{model:?}: warm pool changed trace");

        for pool_on in [true, false] {
            for threads in [1usize, 4] {
                let (losses, trace) =
                    with_pool_enabled(pool_on, || with_threads(threads, || run_once(model)));
                assert_eq!(
                    base_losses, losses,
                    "{model:?}: losses diverged (pool_on={pool_on}, threads={threads})"
                );
                assert_eq!(
                    base_trace, trace,
                    "{model:?}: trace diverged (pool_on={pool_on}, threads={threads})"
                );
            }
        }
    }
}
