#!/usr/bin/env bash
# Tier-1 gate plus the determinism contracts.
#
# Builds the workspace, lints it, runs the full test suite, then re-runs
# the determinism suites under forced thread counts (PIPAD_THREADS=1 and
# =4): the host-parallel bit-exactness contract, the trace-export
# byte-identity contract (golden Chrome-trace regression), the
# allocation-budget gate (steady-state epochs must stay ≥95% below the
# preparing epochs' hot-path heap allocations, under a pinned budget),
# the buffer-pool kill-switch equivalence gate, the chaos gate
# (`repro chaos` twice, diffing the fault-injection reports), the
# resume gate (kill-and-resume bit-identity for every model, pool on and
# off, threads 1 and 4, plus a `repro resume` report thread-diff), the
# multi-GPU gate (loss trajectories bit-identical across device
# counts for every model at both thread counts, plus a `repro multigpu`
# scaling-report thread-diff), and the serving gate (served logits
# bit-identical to the train-time forward at both thread counts and with
# the buffer pool disabled, plus a `repro serve` report thread-diff),
# the profile gate (`repro profile` exports byte-identical across thread
# counts and with the buffer pool disabled), the perf-regression sentinel
# (key profile metrics within tolerance of the committed baseline, plus a
# negative test proving a seeded drift fails), and a rustdoc pass with
# warnings denied.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo test -q =="
cargo test -q

echo "== bit-exactness @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --test host_parallel_exactness

echo "== bit-exactness @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --test host_parallel_exactness

echo "== trace determinism @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --test trace_golden

echo "== trace determinism @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --test trace_golden

echo "== allocation budget (counting allocator, zero-alloc steady state) =="
cargo test -q --release --test alloc_budget
cargo test -q --release --test multigpu_alloc

echo "== pool equivalence (PIPAD_NO_POOL=1 bit-identity) =="
PIPAD_NO_POOL=1 cargo test -q --test pool_equivalence

echo "== chaos determinism (repro chaos @ PIPAD_THREADS=1 vs =4) =="
scratch_dir="$(mktemp -d)"
trap 'rm -rf "$scratch_dir"' EXIT
PIPAD_THREADS=1 cargo run -q --release -p pipad-bench --bin repro -- \
    chaos --scale tiny --out "$scratch_dir/t1"
PIPAD_THREADS=4 cargo run -q --release -p pipad-bench --bin repro -- \
    chaos --scale tiny --out "$scratch_dir/t4"
diff "$scratch_dir/t1/chaos.json" "$scratch_dir/t4/chaos.json"
diff "$scratch_dir/t1/chaos.txt" "$scratch_dir/t4/chaos.txt"
echo "chaos report byte-identical across thread counts"

echo "== resume equivalence (kill-and-resume bit-identity) @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --release --test resume_equivalence

echo "== resume equivalence @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --release --test resume_equivalence

echo "== resume determinism (repro resume @ PIPAD_THREADS=1 vs =4) =="
PIPAD_THREADS=1 cargo run -q --release -p pipad-bench --bin repro -- \
    resume --scale tiny --out "$scratch_dir/r1"
PIPAD_THREADS=4 cargo run -q --release -p pipad-bench --bin repro -- \
    resume --scale tiny --out "$scratch_dir/r4"
diff "$scratch_dir/r1/resume.json" "$scratch_dir/r4/resume.json"
diff "$scratch_dir/r1/resume.txt" "$scratch_dir/r4/resume.txt"
echo "resume report byte-identical across thread counts"

echo "== multi-GPU equivalence (bit-identical across device counts) @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --release --test multigpu_equivalence

echo "== multi-GPU equivalence @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --release --test multigpu_equivalence

echo "== multi-GPU determinism (repro multigpu @ PIPAD_THREADS=1 vs =4) =="
PIPAD_THREADS=1 cargo run -q --release -p pipad-bench --bin repro -- \
    multigpu --scale tiny --out "$scratch_dir/m1"
PIPAD_THREADS=4 cargo run -q --release -p pipad-bench --bin repro -- \
    multigpu --scale tiny --out "$scratch_dir/m4"
diff "$scratch_dir/m1/multigpu.json" "$scratch_dir/m4/multigpu.json"
diff "$scratch_dir/m1/multigpu.txt" "$scratch_dir/m4/multigpu.txt"
echo "multigpu report byte-identical across thread counts"

echo "== serve equivalence (served logits ≡ training forward) @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --release --test serve_equivalence

echo "== serve equivalence @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --release --test serve_equivalence

echo "== serve equivalence with the buffer pool disabled =="
PIPAD_NO_POOL=1 cargo test -q --release --test serve_equivalence

echo "== serve determinism (repro serve @ PIPAD_THREADS=1 vs =4) =="
PIPAD_THREADS=1 cargo run -q --release -p pipad-bench --bin repro -- \
    serve --scale tiny --out "$scratch_dir/s1"
PIPAD_THREADS=4 cargo run -q --release -p pipad-bench --bin repro -- \
    serve --scale tiny --out "$scratch_dir/s4"
diff "$scratch_dir/s1/serve.json" "$scratch_dir/s4/serve.json"
diff "$scratch_dir/s1/serve.txt" "$scratch_dir/s4/serve.txt"
echo "serve report byte-identical across thread counts"

echo "== profile determinism (repro profile @ PIPAD_THREADS=1 vs =4 vs PIPAD_NO_POOL=1) =="
PIPAD_THREADS=1 cargo run -q --release -p pipad-bench --bin repro -- \
    profile --scale tiny --out "$scratch_dir/p1"
PIPAD_THREADS=4 cargo run -q --release -p pipad-bench --bin repro -- \
    profile --scale tiny --out "$scratch_dir/p4"
PIPAD_NO_POOL=1 cargo run -q --release -p pipad-bench --bin repro -- \
    profile --scale tiny --out "$scratch_dir/p0"
for ext in json prom txt; do
    diff "$scratch_dir/p1/profile.$ext" "$scratch_dir/p4/profile.$ext"
    diff "$scratch_dir/p1/profile.$ext" "$scratch_dir/p0/profile.$ext"
done
echo "profile exports byte-identical across thread counts and with the pool disabled"

echo "== perf-regression sentinel (repro profile --baseline) =="
cargo run -q --release -p pipad-bench --bin repro -- \
    profile --scale tiny --out "$scratch_dir/ps" --baseline tests/golden/profile_baseline.json
echo "sentinel accepted the committed baseline"

echo "== perf-regression sentinel negative test (seeded drift must fail) =="
# Perturb the first guarded metric's expected value far outside its
# tolerance band; the comparator must exit nonzero.
sed '2s/"value":[^,]*/"value":123456789.0/' tests/golden/profile_baseline.json \
    > "$scratch_dir/bad_baseline.json"
if cargo run -q --release -p pipad-bench --bin repro -- \
    profile --scale tiny --out "$scratch_dir/pn" --baseline "$scratch_dir/bad_baseline.json" \
    2> "$scratch_dir/sentinel_neg.log"; then
    echo "ERROR: sentinel accepted a drifted baseline" >&2
    exit 1
fi
grep -q "drifted" "$scratch_dir/sentinel_neg.log"
echo "sentinel correctly rejected the seeded drift"

echo "== cargo doc --workspace --no-deps (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
echo "rustdoc clean"

echo "== all checks passed =="
