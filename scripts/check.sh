#!/usr/bin/env bash
# Tier-1 gate plus the host-parallel determinism contract.
#
# Builds the workspace, runs the full test suite, then re-runs the
# bit-exactness suite under forced thread counts (PIPAD_THREADS=1 and =4)
# to prove parallel execution is bit-identical to serial regardless of the
# ambient core count.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== bit-exactness @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --test host_parallel_exactness

echo "== bit-exactness @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --test host_parallel_exactness

echo "== all checks passed =="
