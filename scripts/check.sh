#!/usr/bin/env bash
# Tier-1 gate plus the determinism contracts.
#
# Builds the workspace, lints it, runs the full test suite, then re-runs
# the two determinism suites under forced thread counts (PIPAD_THREADS=1
# and =4): the host-parallel bit-exactness contract and the trace-export
# byte-identity contract (golden Chrome-trace regression).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== cargo test -q =="
cargo test -q

echo "== bit-exactness @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --test host_parallel_exactness

echo "== bit-exactness @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --test host_parallel_exactness

echo "== trace determinism @ PIPAD_THREADS=1 =="
PIPAD_THREADS=1 cargo test -q --test trace_golden

echo "== trace determinism @ PIPAD_THREADS=4 =="
PIPAD_THREADS=4 cargo test -q --test trace_golden

echo "== all checks passed =="
